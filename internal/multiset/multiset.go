package multiset

import (
	"cmp"
	"fmt"
	"slices"
	"strings"
)

// Multiset is a bag of ordered, comparable elements. The element type must
// be ordered so that deterministic iteration, Min, and String are possible,
// which the algorithms rely on (e.g. HΩ picks the smallest trusted
// identifier as leader).
type Multiset[T cmp.Ordered] struct {
	counts map[T]int
	size   int
}

// New returns an empty multiset.
func New[T cmp.Ordered]() *Multiset[T] {
	return &Multiset[T]{counts: make(map[T]int)}
}

// From builds a multiset from the given elements, honouring repetitions.
func From[T cmp.Ordered](elems ...T) *Multiset[T] {
	m := New[T]()
	for _, e := range elems {
		m.Add(e)
	}
	return m
}

// FromCounts builds a multiset from an element→multiplicity map.
// Non-positive multiplicities are ignored.
func FromCounts[T cmp.Ordered](counts map[T]int) *Multiset[T] {
	m := New[T]()
	//detlint:ignore maprange per-element insert into a fresh multiset: AddN is a keyed accumulation, entries are independent
	for e, c := range counts {
		if c > 0 {
			m.AddN(e, c)
		}
	}
	return m
}

// Add inserts one instance of e.
func (m *Multiset[T]) Add(e T) {
	m.counts[e]++
	m.size++
}

// AddN inserts n instances of e. It panics if n is negative.
func (m *Multiset[T]) AddN(e T, n int) {
	if n < 0 {
		panic(fmt.Sprintf("multiset: AddN with negative count %d", n))
	}
	if n == 0 {
		return
	}
	m.counts[e] += n
	m.size += n
}

// Remove deletes one instance of e and reports whether an instance existed.
func (m *Multiset[T]) Remove(e T) bool {
	c, ok := m.counts[e]
	if !ok {
		return false
	}
	if c == 1 {
		delete(m.counts, e)
	} else {
		m.counts[e] = c - 1
	}
	m.size--
	return true
}

// Count returns the multiplicity mult(e) of e.
func (m *Multiset[T]) Count(e T) int { return m.counts[e] }

// Contains reports whether at least one instance of e is present.
func (m *Multiset[T]) Contains(e T) bool { return m.counts[e] > 0 }

// Len returns the total number of instances, |I(S)|.
func (m *Multiset[T]) Len() int { return m.size }

// Distinct returns the number of distinct elements.
func (m *Multiset[T]) Distinct() int { return len(m.counts) }

// Empty reports whether the multiset has no instances.
func (m *Multiset[T]) Empty() bool { return m.size == 0 }

// Elems returns all instances in sorted order, with repetitions.
func (m *Multiset[T]) Elems() []T {
	out := make([]T, 0, m.size)
	for _, e := range m.Support() {
		for i := 0; i < m.counts[e]; i++ {
			out = append(out, e)
		}
	}
	return out
}

// Support returns the distinct elements in sorted order.
func (m *Multiset[T]) Support() []T {
	keys := make([]T, 0, len(m.counts))
	for e := range m.counts {
		keys = append(keys, e)
	}
	slices.Sort(keys)
	return keys
}

// Min returns the smallest element and false if the multiset is empty.
func (m *Multiset[T]) Min() (T, bool) {
	var best T
	first := true
	//detlint:ignore maprange running min: commutative, associative and idempotent, so visit order cannot change the result
	for e := range m.counts {
		if first || e < best {
			best = e
			first = false
		}
	}
	return best, !first
}

// Clone returns an independent copy.
func (m *Multiset[T]) Clone() *Multiset[T] {
	c := &Multiset[T]{counts: make(map[T]int, len(m.counts)), size: m.size}
	for e, n := range m.counts {
		c.counts[e] = n
	}
	return c
}

// Equal reports whether m and o contain exactly the same instances.
func (m *Multiset[T]) Equal(o *Multiset[T]) bool {
	if m == o {
		return true
	}
	if m.size != o.size || len(m.counts) != len(o.counts) {
		return false
	}
	for e, n := range m.counts {
		if o.counts[e] != n {
			return false
		}
	}
	return true
}

// SubsetOf reports multiset inclusion m ⊆ o: every element of m appears in o
// with at least the same multiplicity.
func (m *Multiset[T]) SubsetOf(o *Multiset[T]) bool {
	if m.size > o.size {
		return false
	}
	for e, n := range m.counts {
		if o.counts[e] < n {
			return false
		}
	}
	return true
}

// Intersects reports whether m and o share at least one common element
// (ignoring multiplicities beyond one).
func (m *Multiset[T]) Intersects(o *Multiset[T]) bool {
	a, b := m, o
	if len(b.counts) < len(a.counts) {
		a, b = b, a
	}
	for e := range a.counts {
		if b.counts[e] > 0 {
			return true
		}
	}
	return false
}

// Intersect returns the multiset intersection: each element with
// multiplicity min(mult_m, mult_o).
func (m *Multiset[T]) Intersect(o *Multiset[T]) *Multiset[T] {
	out := New[T]()
	//detlint:ignore maprange per-element insert into a fresh multiset: min(n, on) depends only on the entry, AddN is keyed accumulation
	for e, n := range m.counts {
		if on := o.counts[e]; on > 0 {
			out.AddN(e, min(n, on))
		}
	}
	return out
}

// Union returns the multiset union: each element with multiplicity
// max(mult_m, mult_o).
func (m *Multiset[T]) Union(o *Multiset[T]) *Multiset[T] {
	out := m.Clone()
	for e, n := range o.counts {
		if n > out.counts[e] {
			out.size += n - out.counts[e]
			out.counts[e] = n
		}
	}
	return out
}

// Sum returns the additive union: each element with multiplicity
// mult_m + mult_o.
func (m *Multiset[T]) Sum(o *Multiset[T]) *Multiset[T] {
	out := m.Clone()
	//detlint:ignore maprange per-element addition into a cloned multiset: AddN is keyed commutative accumulation
	for e, n := range o.counts {
		out.AddN(e, n)
	}
	return out
}

// Counts returns a copy of the element→multiplicity map.
func (m *Multiset[T]) Counts() map[T]int {
	out := make(map[T]int, len(m.counts))
	for e, n := range m.counts {
		out[e] = n
	}
	return out
}

// Key returns a canonical string encoding of the multiset, usable as a map
// key. Two multisets are Equal iff their Keys are equal. The paper's Fig. 7
// uses a received multiset itself as a quorum label; Key is how labels are
// compared and stored.
func (m *Multiset[T]) Key() string {
	var b strings.Builder
	for i, e := range m.Support() {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%v*%d", e, m.counts[e])
	}
	return b.String()
}

// String renders the multiset as {a, a, b} style, sorted.
func (m *Multiset[T]) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range m.Elems() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%v", e)
	}
	b.WriteByte('}')
	return b.String()
}
