// Package multiset implements a generic multiset (bag), the identifier
// algebra the paper builds on: for a set of processes S, I(S) is the
// multiset of process identities in S, and mult_I(i) is the multiplicity of
// identity i in I. Because several homonymous processes can carry the same
// identity, |I(S)| counts instances, so |I(S)| = |S| always holds.
//
// The zero value of Multiset is not ready to use; call New or From.
// All operations are non-destructive unless documented otherwise.
package multiset
