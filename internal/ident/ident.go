package ident

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/multiset"
)

// ID is a process identifier. Identifiers are compared by value; distinct
// processes may hold equal IDs.
type ID string

// Anonymous is the default identifier ⊥ shared by every process of an
// anonymous system. A process lacking an identity is modelled as carrying
// Anonymous, exactly as the paper does.
const Anonymous ID = "⊥"

// Assignment is an identity assignment for n processes: Assignment[p] is
// id(p) for the process with internal index p. Internal indexes exist only
// in the formalization (the set Π); algorithms never observe them.
type Assignment []ID

// N returns the number of processes n = |Π|.
func (a Assignment) N() int { return len(a) }

// I returns I(S) for S = Π: the multiset of all identities in the system.
func (a Assignment) I() *multiset.Multiset[ID] {
	return a.ISub(allIndexes(len(a)))
}

// ISub returns I(S) for the subset S of process indexes.
func (a Assignment) ISub(s []int) *multiset.Multiset[ID] {
	m := multiset.New[ID]()
	for _, p := range s {
		m.Add(a[p])
	}
	return m
}

// Mult returns mult_{I(Π)}(id), the number of processes carrying id.
func (a Assignment) Mult(id ID) int {
	c := 0
	for _, x := range a {
		if x == id {
			c++
		}
	}
	return c
}

// DistinctCount returns ℓ, the number of distinct identifiers in use.
func (a Assignment) DistinctCount() int {
	return a.I().Distinct()
}

// Homonyms returns the indexes of all processes sharing the identity id.
func (a Assignment) Homonyms(id ID) []int {
	var out []int
	for p, x := range a {
		if x == id {
			out = append(out, p)
		}
	}
	return out
}

// Validate reports an error for malformed assignments (empty, or empty ID).
func (a Assignment) Validate() error {
	if len(a) == 0 {
		return fmt.Errorf("ident: assignment has no processes")
	}
	for p, x := range a {
		if x == "" {
			return fmt.Errorf("ident: process %d has empty identifier", p)
		}
	}
	return nil
}

// Unique returns the classical assignment with n distinct identifiers
// p1..pn (the AS[∅] extreme of homonymy).
func Unique(n int) Assignment {
	a := make(Assignment, n)
	for i := range a {
		a[i] = ID(fmt.Sprintf("p%03d", i+1))
	}
	return a
}

// AnonymousN returns the anonymous assignment: n processes all carrying ⊥
// (the AAS[∅] extreme of homonymy).
func AnonymousN(n int) Assignment {
	a := make(Assignment, n)
	for i := range a {
		a[i] = Anonymous
	}
	return a
}

// Balanced returns a homonymous assignment with ℓ distinct identifiers
// g01..gℓ spread as evenly as possible over n processes. It panics if
// ℓ < 1 or ℓ > n, which are programming errors in experiment setup.
func Balanced(n, l int) Assignment {
	if l < 1 || l > n {
		panic(fmt.Sprintf("ident: Balanced(%d, %d): need 1 <= l <= n", n, l))
	}
	a := make(Assignment, n)
	for i := range a {
		a[i] = ID(fmt.Sprintf("g%03d", i%l+1))
	}
	return a
}

// Skewed returns a homonymous assignment where one "giant" identifier is
// shared by heavy processes and the remaining processes get unique
// identifiers. heavy must be in [1, n]. This is the misconfiguration /
// default-identifier shape from the paper's introduction.
func Skewed(n, heavy int) Assignment {
	if heavy < 1 || heavy > n {
		panic(fmt.Sprintf("ident: Skewed(%d, %d): need 1 <= heavy <= n", n, heavy))
	}
	a := make(Assignment, n)
	for i := range a {
		if i < heavy {
			a[i] = "giant"
		} else {
			a[i] = ID(fmt.Sprintf("solo%03d", i))
		}
	}
	return a
}

// Random returns an assignment where each process independently draws its
// identifier uniformly from a space of the given size, modelling randomly
// generated identifiers that may collide. space must be >= 1.
func Random(n, space int, r *rand.Rand) Assignment {
	if space < 1 {
		panic(fmt.Sprintf("ident: Random space %d < 1", space))
	}
	a := make(Assignment, n)
	for i := range a {
		a[i] = ID(fmt.Sprintf("r%04d", r.Intn(space)+1))
	}
	return a
}

// Domains returns an assignment grouping processes into named domains,
// sized by the sizes slice — the privacy-by-domain scenario of [14] cited
// in the paper, where every user of a domain shares the domain identifier.
func Domains(sizes map[string]int) Assignment {
	names := make([]string, 0, len(sizes))
	for d := range sizes {
		names = append(names, d)
	}
	sort.Strings(names)
	var a Assignment
	for _, d := range names {
		for i := 0; i < sizes[d]; i++ {
			a = append(a, ID(d))
		}
	}
	return a
}

func allIndexes(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}
