// Package ident models process identities in homonymous systems.
//
// A system has n processes; id(p) assigns each process an identifier, and
// several processes may share one (homonymy). The two extremes are the
// classical unique-identifier system (ℓ = n distinct identifiers) and the
// anonymous system (ℓ = 1; every process carries the default identifier ⊥).
// Assignment is a deployment-time decision, so this package provides the
// assignment schemes the paper's motivation section describes:
// misconfiguration duplicates, per-domain identifiers, randomly generated
// identifiers, and sensor-network style constrained identifier spaces.
package ident
