package ident

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnique(t *testing.T) {
	a := Unique(5)
	if a.N() != 5 {
		t.Fatalf("N = %d, want 5", a.N())
	}
	if got := a.DistinctCount(); got != 5 {
		t.Errorf("DistinctCount = %d, want 5", got)
	}
	for _, id := range a {
		if a.Mult(id) != 1 {
			t.Errorf("Mult(%s) = %d, want 1", id, a.Mult(id))
		}
	}
	if err := a.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAnonymousN(t *testing.T) {
	a := AnonymousN(4)
	if got := a.DistinctCount(); got != 1 {
		t.Errorf("DistinctCount = %d, want 1", got)
	}
	if a.Mult(Anonymous) != 4 {
		t.Errorf("Mult(⊥) = %d, want 4", a.Mult(Anonymous))
	}
	if got := a.Homonyms(Anonymous); len(got) != 4 {
		t.Errorf("Homonyms(⊥) = %v", got)
	}
}

func TestBalanced(t *testing.T) {
	tests := []struct {
		n, l int
	}{
		{6, 3}, {7, 3}, {5, 1}, {5, 5}, {1, 1}, {10, 4},
	}
	for _, tt := range tests {
		a := Balanced(tt.n, tt.l)
		if a.N() != tt.n {
			t.Errorf("Balanced(%d,%d).N = %d", tt.n, tt.l, a.N())
		}
		if got := a.DistinctCount(); got != tt.l {
			t.Errorf("Balanced(%d,%d) distinct = %d, want %d", tt.n, tt.l, got, tt.l)
		}
		// Balance: group sizes differ by at most one.
		lo, hi := tt.n, 0
		for _, id := range a.I().Support() {
			m := a.Mult(id)
			lo, hi = min(lo, m), max(hi, m)
		}
		if hi-lo > 1 {
			t.Errorf("Balanced(%d,%d) group sizes spread %d..%d", tt.n, tt.l, lo, hi)
		}
	}
}

func TestBalancedPanics(t *testing.T) {
	for _, bad := range [][2]int{{3, 0}, {3, 4}, {0, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Balanced(%d,%d) should panic", bad[0], bad[1])
				}
			}()
			Balanced(bad[0], bad[1])
		}()
	}
}

func TestSkewed(t *testing.T) {
	a := Skewed(6, 4)
	if a.Mult("giant") != 4 {
		t.Errorf("Mult(giant) = %d, want 4", a.Mult("giant"))
	}
	if got := a.DistinctCount(); got != 3 { // giant + 2 solos
		t.Errorf("DistinctCount = %d, want 3", got)
	}
}

func TestRandomCollides(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := Random(50, 10, r)
	if a.N() != 50 {
		t.Fatalf("N = %d", a.N())
	}
	// With 50 draws from a space of 10, collisions are certain.
	if got := a.DistinctCount(); got > 10 {
		t.Errorf("DistinctCount = %d, want <= 10", got)
	}
}

func TestDomains(t *testing.T) {
	a := Domains(map[string]int{"acme.org": 3, "web.net": 2})
	if a.N() != 5 {
		t.Fatalf("N = %d, want 5", a.N())
	}
	if a.Mult("acme.org") != 3 || a.Mult("web.net") != 2 {
		t.Errorf("unexpected multiplicities: %v", a)
	}
	// Deterministic ordering regardless of map iteration.
	b := Domains(map[string]int{"web.net": 2, "acme.org": 3})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Domains not deterministic: %v vs %v", a, b)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Assignment{}).Validate(); err == nil {
		t.Error("empty assignment should fail Validate")
	}
	if err := (Assignment{"a", ""}).Validate(); err == nil {
		t.Error("empty identifier should fail Validate")
	}
}

func TestISubAndInvariant(t *testing.T) {
	a := Balanced(7, 2)
	sub := []int{0, 2, 4}
	m := a.ISub(sub)
	if m.Len() != len(sub) {
		t.Errorf("|I(S)| = %d, want |S| = %d", m.Len(), len(sub))
	}
}

// The paper's basic invariant: |I(S)| = |S| for any subset S, and the sum of
// multiplicities equals n.
func TestQuickIdentityInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		var a Assignment
		switch r.Intn(4) {
		case 0:
			a = Unique(n)
		case 1:
			a = AnonymousN(n)
		case 2:
			a = Balanced(n, 1+r.Intn(n))
		default:
			a = Random(n, 1+r.Intn(8), r)
		}
		if a.I().Len() != n {
			return false
		}
		total := 0
		for _, id := range a.I().Support() {
			total += a.Mult(id)
			if a.Mult(id) != len(a.Homonyms(id)) {
				return false
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
