// Command hdsim runs one verified experiment on the simulator:
//
//	go run ./cmd/hdsim -algo fig8 -n 5 -l 2 -t 2 -crashes 1:30
//	go run ./cmd/hdsim -algo fig9 -n 6 -l 3 -crashes 0:20,1:40,2:60,3:80
//	go run ./cmd/hdsim -algo fig8 -detectors mp -gst 80 -delta 3
//	go run ./cmd/hdsim -algo fig8 -net pareto:1.5:15
//	go run ./cmd/hdsim -algo ohp -n 12 -l 4 -churn 0.25:2:40:60
//
// Algorithms: fig8 = HAS[t<n/2, HΩ] (Theorem 7); fig9 = HAS[HΩ, HΣ]
// (Theorem 8, any number of crashes); fig9-anon = the anonymous AΩ
// baseline; ohp = the standalone Figure 6 detector (◇HP̄ → HΩ), the only
// algorithm that supports crash-recovery churn (-churn). Every run is
// verified (consensus properties, or detector class properties) before
// results are printed; a verification failure exits non-zero.
//
// -net selects the delay model (see cliutil.ParseNet): async[:max],
// psync:gst:delta, timely[:δ], pareto[:α[:cap]], lognormal[:σ[:cap]],
// alt[:period[:calm]], asym[:skew]. It overrides -gst/-delta.
//
// With -seeds k > 1 the same scenario is swept over k consecutive seeds in
// parallel across all cores (deterministically: the report is identical
// for any -workers value), and per-seed rows plus aggregates are printed:
//
//	go run ./cmd/hdsim -algo fig8 -n 7 -l 3 -t 3 -crashes 1:30 -seeds 64
//
// Seed sweeps are campaigns: -shards/-shard/-checkpoint-dir/-resume shard
// the seed list into checkpointed batches exactly as in cmd/experiments,
// so a large sweep can fan out across processes and resume after a kill:
//
//	go run ./cmd/hdsim -algo fig8 -seeds 64 -shards 4 -shard 2 -checkpoint-dir ckpt
//	go run ./cmd/hdsim -algo fig8 -seeds 64 -shards 4 -checkpoint-dir ckpt -resume
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"log"

	hds "repro"
	"repro/internal/campaign"
	"repro/internal/cliutil"
	"repro/internal/fd/oracle"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func main() {
	algo := flag.String("algo", "fig8", "fig8, fig9, fig9-anon, or ohp (standalone Figure 6 detector)")
	n := flag.Int("n", 5, "number of processes")
	l := flag.Int("l", 2, "number of distinct identifiers (1 = anonymous, n = unique)")
	t := flag.Int("t", 2, "crash bound for fig8 (t < n/2)")
	crashes := flag.String("crashes", "", "crash schedule pid:time[,pid:time...]")
	churn := flag.String("churn", "", "crash-recovery churn fraction[:cycles[:down[:up]]], stagger fixed at 7 (ohp only)")
	netSpec := flag.String("net", "", "network model spec (overrides -gst/-delta; see doc comment)")
	seed := flag.Int64("seed", 1, "random seed (first seed of a sweep)")
	seeds := flag.Int("seeds", 1, "number of consecutive seeds to sweep")
	workers := flag.Int("workers", 0, "sweep parallelism (0 = all cores, 1 = serial)")
	stabilize := flag.Int64("stabilize", 100, "oracle detector stabilization time")
	adversary := flag.String("adversary", "rotate", "pre-stabilization oracle behaviour: none, rotate, split")
	detectors := flag.String("detectors", "oracle", "oracle, or mp (fig8 only: the Figure 6 stack)")
	gst := flag.Int64("gst", 0, "network GST (0 = fully asynchronous reliable)")
	delta := flag.Int64("delta", 3, "post-GST latency bound")
	horizon := flag.Int64("horizon", 0, "virtual-time horizon (0 = algorithm default)")
	campaignFlags := cliutil.CampaignFlags(flag.CommandLine)
	flag.Parse()
	sweep.SetDefaultWorkers(*workers)

	campaignCfg, err := campaignFlags()
	if err != nil {
		log.Fatal(err)
	}
	if *seeds <= 1 && (campaignCfg.Shards > 1 || campaignCfg.Dir != "" || campaignCfg.Resume) {
		log.Fatal("-shards/-shard/-checkpoint-dir/-resume apply to seed sweeps: set -seeds > 1")
	}

	sched, err := cliutil.ParseCrashes(*crashes)
	if err != nil {
		log.Fatal(err)
	}
	churnSpec, err := cliutil.ParseChurn(*churn)
	if err != nil {
		log.Fatal(err)
	}
	if churnSpec.Fraction > 0 && *algo != "ohp" {
		log.Fatalf("-churn requires -algo ohp: the consensus algorithms are crash-stop (recovered processes are outside their fault model)")
	}
	ids := hds.BalancedIDs(*n, *l)
	var net sim.Model = hds.Async{MaxDelay: 8}
	if *gst > 0 {
		net = hds.PartialSync{GST: *gst, Delta: *delta}
	}
	if *netSpec != "" {
		if net, err = cliutil.ParseNet(*netSpec); err != nil {
			log.Fatal(err)
		}
	}
	adv := map[string]oracle.Adversary{
		"none": oracle.AdversaryNone, "rotate": oracle.AdversaryRotate, "split": oracle.AdversarySplit,
	}[*adversary]

	if *algo == "ohp" {
		if *seeds > 1 {
			log.Fatal("-seeds > 1 is not supported with -algo ohp; sweep seeds with the consensus algorithms or via internal/sweep")
		}
		runOHP(ids, net, *netSpec != "" || *gst > 0, sched, churnSpec, *gst, *delta, *seed, *horizon)
		return
	}
	consensusHorizon := *horizon
	if consensusHorizon <= 0 {
		consensusHorizon = 3_000_000
	}

	runOne := func(seed int64) (hds.Report, hds.Stats, error) {
		switch *algo {
		case "fig8":
			src := hds.OracleDetectors
			if *detectors == "mp" {
				src = hds.MessagePassingDetectors
			}
			return hds.RunFig8(hds.Fig8Experiment{
				IDs: ids, T: *t, Crashes: sched, Net: net,
				Detectors: src, Stabilize: *stabilize, Adversary: adv, Seed: seed,
				Horizon: consensusHorizon,
			})
		case "fig9", "fig9-anon":
			return hds.RunFig9(hds.Fig9Experiment{
				IDs: ids, Crashes: sched, Net: net,
				AnonymousBaseline: *algo == "fig9-anon",
				Stabilize:         *stabilize, Adversary: adv, Seed: seed,
				Horizon: consensusHorizon,
			})
		default:
			log.Fatalf("unknown algorithm %q", *algo)
			panic("unreachable")
		}
	}

	if *seeds > 1 {
		// Everything that defines the scenario goes into the fingerprint:
		// checkpoints are only interchangeable between runs of the exact
		// same scenario, and a digest alone cannot tell scenarios apart.
		scenario := fmt.Sprintf("algo=%s ids=%v t=%d crashes=%s net=%s detectors=%s stabilize=%d adversary=%s horizon=%d",
			*algo, ids, *t, *crashes, net, *detectors, *stabilize, *adversary, consensusHorizon)
		runSweep(campaignCfg, *algo, ids, *crashes, scenario, *seed, *seeds, runOne)
		return
	}

	fmt.Printf("algo=%s n=%d ℓ=%d ids=%v crashes=%s seed=%d\n", *algo, *n, *l, ids, *crashes, *seed)
	rep, stats, err := runOne(*seed)
	if err != nil {
		log.Fatalf("verification failed: %v", err)
	}

	fmt.Println("consensus verified ✔ (termination, validity, agreement)")
	fmt.Printf("  decided value:    %q\n", rep.Value)
	fmt.Printf("  deciders:         %d\n", rep.Deciders)
	fmt.Printf("  rounds:           %d\n", rep.MaxRound)
	fmt.Printf("  decisions span:   t=%d .. t=%d\n", rep.FirstDecision, rep.LastDecision)
	fmt.Printf("  broadcasts:       %d total — %s\n", stats.Broadcasts, cliutil.FormatTagCounts(stats.ByTag))
	fmt.Printf("  deliveries/drops: %d/%d\n", stats.Delivered, stats.Dropped)
}

// runOHP runs the standalone Figure 6 detector — crash-stop (verified
// ◇HP̄/HΩ class properties) or, with a churn spec, crash-recovery churn
// (verified against the eventually-up ground truth).
func runOHP(ids hds.Assignment, net sim.Model, netGiven bool, crashes map[hds.PID]hds.Time,
	churn hds.ChurnSpec, gst, delta int64, seed, horizon int64) {
	if churn.Fraction > 0 {
		if len(crashes) > 0 {
			log.Fatal("use either -churn or -crashes for -algo ohp, not both")
		}
		// -net or -gst/-delta override the churn default (PartialSync{δ=3}).
		var cnet sim.Model
		if netGiven {
			cnet = net
		}
		effective := cnet
		if effective == nil {
			effective = sim.PartialSync{Delta: 3}
		}
		fmt.Printf("algo=ohp ids=%v churn=%s net=%s seed=%d\n", ids, churn, effective, seed)
		res, err := hds.RunChurnOHP(hds.ChurnOHPExperiment{
			IDs: ids, Churn: churn, Net: cnet, Seed: seed, Horizon: horizon,
		})
		if err != nil {
			log.Fatalf("verification failed: %v", err)
		}
		fmt.Println("detector verified ✔ (◇HP̄ + HΩ over the eventually-up set)")
		fmt.Printf("  eventually up:    %d/%d (correct in the strict sense: %d)\n", res.EventuallyUp, ids.N(), res.Correct)
		fmt.Printf("  recoveries:       %d\n", res.Recoveries)
		fmt.Printf("  last change:      t=%d\n", res.LastChange)
		fmt.Printf("  ◇HP̄ re-stab:     t=%d\n", res.TrustedRestab)
		fmt.Printf("  HΩ re-stab:       t=%d  leader=%s\n", res.LeaderRestab, res.Leader)
		fmt.Printf("  broadcasts:       %d — %s\n", res.Stats.Broadcasts, cliutil.FormatTagCounts(res.Stats.ByTag))
		return
	}
	exp := hds.OHPExperiment{IDs: ids, Crashes: crashes, GST: gst, Delta: delta, Seed: seed, Horizon: horizon}
	var effective sim.Model = sim.PartialSync{GST: gst, Delta: delta} // RunOHP's default
	if netGiven {
		exp.Net = net
		effective = net
	}
	fmt.Printf("algo=ohp ids=%v crashes=%d net=%s seed=%d\n", ids, len(crashes), effective, seed)
	res, err := hds.RunOHP(exp)
	if err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("detector verified ✔ (◇HP̄ + HΩ)")
	fmt.Printf("  ◇HP̄ stabilized:  t=%d\n", res.TrustedStabilization)
	fmt.Printf("  HΩ stabilized:    t=%d  leader=%s\n", res.LeaderStabilization, res.Leader)
	fmt.Printf("  broadcasts:       %d — %s\n", res.Stats.Broadcasts, cliutil.FormatTagCounts(res.Stats.ByTag))
}

// seedRow is one seed's result in a sweep campaign. It is flat and
// JSON-lossless on purpose: rows round-trip through shard checkpoints, so
// the campaign determinism contract requires exact encode/decode.
type seedRow struct {
	Seed       int64  `json:"seed"`
	Rounds     int    `json:"rounds"`
	Decided    int64  `json:"decided"` // virtual time of the last decision
	Broadcasts int    `json:"broadcasts"`
	Err        string `json:"err,omitempty"`
}

// runSweep executes the scenario across consecutive seeds through the
// campaign layer (sharded/checkpointed/resumable when configured) and
// prints per-seed rows plus min/mean/max aggregates. The campaign id
// carries a hash of the full scenario fingerprint, so checkpoints from a
// run with different flags (-crashes, -net, -gst, -t, …) never verify
// against this campaign on -resume.
func runSweep(cfg campaign.Config, algo string, ids hds.Assignment, crashes, scenario string, first int64, k int, runOne func(int64) (hds.Report, hds.Stats, error)) {
	fp := fnv.New64a()
	fp.Write([]byte(scenario))
	id := fmt.Sprintf("hdsim-%s-n%d-l%d-seed%d-x%d-%016x", algo, ids.N(), ids.DistinctCount(), first, k, fp.Sum64())
	res, err := campaign.Run(cfg, id, k, func(i int) seedRow {
		s := first + int64(i)
		rep, stats, err := runOne(s)
		if err != nil {
			return seedRow{Seed: s, Err: err.Error()}
		}
		return seedRow{Seed: s, Rounds: rep.MaxRound, Decided: int64(rep.LastDecision), Broadcasts: stats.Broadcasts}
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Complete {
		fmt.Printf("campaign %s: shard %d/%d checkpointed in %s (merge with -resume)\n", id, cfg.Shard, cfg.Shards, cfg.Dir)
		return
	}
	fmt.Printf("algo=%s ids=%v crashes=%s seeds=%d..%d workers=%d campaign=%s digest=%.12s\n",
		algo, ids, crashes, first, first+int64(k)-1, sweep.DefaultWorkers(), id, res.Digest)

	var (
		failures                        int
		minD, maxD, sumD                int64
		minRounds, maxRounds, sumRounds int
		sumBcast                        int
	)
	minD, minRounds = -1, -1
	for _, r := range res.Rows {
		if r.Err != "" {
			failures++
			fmt.Printf("  seed=%-5d ✗ %v\n", r.Seed, r.Err)
			continue
		}
		fmt.Printf("  seed=%-5d rounds=%-3d decided=t=%-8d broadcasts=%d\n",
			r.Seed, r.Rounds, r.Decided, r.Broadcasts)
		if minD < 0 || r.Decided < minD {
			minD = r.Decided
		}
		if r.Decided > maxD {
			maxD = r.Decided
		}
		sumD += r.Decided
		if minRounds < 0 || r.Rounds < minRounds {
			minRounds = r.Rounds
		}
		if r.Rounds > maxRounds {
			maxRounds = r.Rounds
		}
		sumRounds += r.Rounds
		sumBcast += r.Broadcasts
	}
	okRuns := k - failures
	if okRuns == 0 {
		log.Fatalf("all %d runs failed verification", k)
	}
	fmt.Printf("verified %d/%d runs ✔\n", okRuns, k)
	fmt.Printf("  decided at (vt): min=%d mean=%.1f max=%d\n", minD, float64(sumD)/float64(okRuns), maxD)
	fmt.Printf("  rounds:          min=%d mean=%.1f max=%d\n", minRounds, float64(sumRounds)/float64(okRuns), maxRounds)
	fmt.Printf("  broadcasts:      mean=%.1f\n", float64(sumBcast)/float64(okRuns))
	if failures > 0 {
		log.Fatalf("%d/%d runs failed verification", failures, k)
	}
}
