// Command hdsim runs one verified consensus experiment on the simulator:
//
//	go run ./cmd/hdsim -algo fig8 -n 5 -l 2 -t 2 -crashes 1:30
//	go run ./cmd/hdsim -algo fig9 -n 6 -l 3 -crashes 0:20,1:40,2:60,3:80
//	go run ./cmd/hdsim -algo fig8 -detectors mp -gst 80 -delta 3
//
// Algorithms: fig8 = HAS[t<n/2, HΩ] (Theorem 7); fig9 = HAS[HΩ, HΣ]
// (Theorem 8, any number of crashes); fig9-anon = the anonymous AΩ
// baseline. Every run is verified (termination/validity/agreement) before
// results are printed; a verification failure exits non-zero.
//
// With -seeds k > 1 the same scenario is swept over k consecutive seeds in
// parallel across all cores (deterministically: the report is identical
// for any -workers value), and per-seed rows plus aggregates are printed:
//
//	go run ./cmd/hdsim -algo fig8 -n 7 -l 3 -t 3 -crashes 1:30 -seeds 64
package main

import (
	"flag"
	"fmt"
	"log"

	hds "repro"
	"repro/internal/cliutil"
	"repro/internal/fd/oracle"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func main() {
	algo := flag.String("algo", "fig8", "fig8, fig9, or fig9-anon")
	n := flag.Int("n", 5, "number of processes")
	l := flag.Int("l", 2, "number of distinct identifiers (1 = anonymous, n = unique)")
	t := flag.Int("t", 2, "crash bound for fig8 (t < n/2)")
	crashes := flag.String("crashes", "", "crash schedule pid:time[,pid:time...]")
	seed := flag.Int64("seed", 1, "random seed (first seed of a sweep)")
	seeds := flag.Int("seeds", 1, "number of consecutive seeds to sweep")
	workers := flag.Int("workers", 0, "sweep parallelism (0 = all cores, 1 = serial)")
	stabilize := flag.Int64("stabilize", 100, "oracle detector stabilization time")
	adversary := flag.String("adversary", "rotate", "pre-stabilization oracle behaviour: none, rotate, split")
	detectors := flag.String("detectors", "oracle", "oracle, or mp (fig8 only: the Figure 6 stack)")
	gst := flag.Int64("gst", 0, "network GST (0 = fully asynchronous reliable)")
	delta := flag.Int64("delta", 3, "post-GST latency bound")
	flag.Parse()
	sweep.SetDefaultWorkers(*workers)

	sched, err := cliutil.ParseCrashes(*crashes)
	if err != nil {
		log.Fatal(err)
	}
	ids := hds.BalancedIDs(*n, *l)
	var net sim.Model = hds.Async{MaxDelay: 8}
	if *gst > 0 {
		net = hds.PartialSync{GST: *gst, Delta: *delta}
	}
	adv := map[string]oracle.Adversary{
		"none": oracle.AdversaryNone, "rotate": oracle.AdversaryRotate, "split": oracle.AdversarySplit,
	}[*adversary]

	runOne := func(seed int64) (hds.Report, hds.Stats, error) {
		switch *algo {
		case "fig8":
			src := hds.OracleDetectors
			if *detectors == "mp" {
				src = hds.MessagePassingDetectors
			}
			return hds.RunFig8(hds.Fig8Experiment{
				IDs: ids, T: *t, Crashes: sched, Net: net,
				Detectors: src, Stabilize: *stabilize, Adversary: adv, Seed: seed,
				Horizon: 3_000_000,
			})
		case "fig9", "fig9-anon":
			return hds.RunFig9(hds.Fig9Experiment{
				IDs: ids, Crashes: sched, Net: net,
				AnonymousBaseline: *algo == "fig9-anon",
				Stabilize:         *stabilize, Adversary: adv, Seed: seed,
				Horizon: 3_000_000,
			})
		default:
			log.Fatalf("unknown algorithm %q", *algo)
			panic("unreachable")
		}
	}

	if *seeds > 1 {
		runSweep(*algo, ids, *crashes, *seed, *seeds, runOne)
		return
	}

	fmt.Printf("algo=%s n=%d ℓ=%d ids=%v crashes=%s seed=%d\n", *algo, *n, *l, ids, *crashes, *seed)
	rep, stats, err := runOne(*seed)
	if err != nil {
		log.Fatalf("verification failed: %v", err)
	}

	fmt.Println("consensus verified ✔ (termination, validity, agreement)")
	fmt.Printf("  decided value:    %q\n", rep.Value)
	fmt.Printf("  deciders:         %d\n", rep.Deciders)
	fmt.Printf("  rounds:           %d\n", rep.MaxRound)
	fmt.Printf("  decisions span:   t=%d .. t=%d\n", rep.FirstDecision, rep.LastDecision)
	fmt.Printf("  broadcasts:       %d total — %s\n", stats.Broadcasts, cliutil.FormatTagCounts(stats.ByTag))
	fmt.Printf("  deliveries/drops: %d/%d\n", stats.Delivered, stats.Dropped)
}

// runSweep executes the scenario across consecutive seeds on the sweep
// pool and prints per-seed rows plus min/mean/max aggregates.
func runSweep(algo string, ids hds.Assignment, crashes string, first int64, k int, runOne func(int64) (hds.Report, hds.Stats, error)) {
	fmt.Printf("algo=%s ids=%v crashes=%s seeds=%d..%d workers=%d\n",
		algo, ids, crashes, first, first+int64(k)-1, sweep.DefaultWorkers())
	type result struct {
		rep   hds.Report
		stats hds.Stats
		err   error
	}
	seedList := make([]int64, k)
	for i := range seedList {
		seedList[i] = first + int64(i)
	}
	results := sweep.Map(seedList, func(_ int, s int64) result {
		rep, stats, err := runOne(s)
		return result{rep, stats, err}
	})

	var (
		failures                        int
		minD, maxD, sumD                hds.Time
		minRounds, maxRounds, sumRounds int
		sumBcast                        int
	)
	minD, minRounds = -1, -1
	for i, r := range results {
		if r.err != nil {
			failures++
			fmt.Printf("  seed=%-5d ✗ %v\n", seedList[i], r.err)
			continue
		}
		fmt.Printf("  seed=%-5d rounds=%-3d decided=t=%-8d broadcasts=%d\n",
			seedList[i], r.rep.MaxRound, r.rep.LastDecision, r.stats.Broadcasts)
		if minD < 0 || r.rep.LastDecision < minD {
			minD = r.rep.LastDecision
		}
		if r.rep.LastDecision > maxD {
			maxD = r.rep.LastDecision
		}
		sumD += r.rep.LastDecision
		if minRounds < 0 || r.rep.MaxRound < minRounds {
			minRounds = r.rep.MaxRound
		}
		if r.rep.MaxRound > maxRounds {
			maxRounds = r.rep.MaxRound
		}
		sumRounds += r.rep.MaxRound
		sumBcast += r.stats.Broadcasts
	}
	okRuns := k - failures
	if okRuns == 0 {
		log.Fatalf("all %d runs failed verification", k)
	}
	fmt.Printf("verified %d/%d runs ✔\n", okRuns, k)
	fmt.Printf("  decided at (vt): min=%d mean=%.1f max=%d\n", minD, float64(sumD)/float64(okRuns), maxD)
	fmt.Printf("  rounds:          min=%d mean=%.1f max=%d\n", minRounds, float64(sumRounds)/float64(okRuns), maxRounds)
	fmt.Printf("  broadcasts:      mean=%.1f\n", float64(sumBcast)/float64(okRuns))
	if failures > 0 {
		log.Fatalf("%d/%d runs failed verification", failures, k)
	}
}
