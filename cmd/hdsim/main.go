// Command hdsim runs one verified consensus experiment on the simulator:
//
//	go run ./cmd/hdsim -algo fig8 -n 5 -l 2 -t 2 -crashes 1:30
//	go run ./cmd/hdsim -algo fig9 -n 6 -l 3 -crashes 0:20,1:40,2:60,3:80
//	go run ./cmd/hdsim -algo fig8 -detectors mp -gst 80 -delta 3
//
// Algorithms: fig8 = HAS[t<n/2, HΩ] (Theorem 7); fig9 = HAS[HΩ, HΣ]
// (Theorem 8, any number of crashes); fig9-anon = the anonymous AΩ
// baseline. The run is verified (termination/validity/agreement) before
// results are printed; a verification failure exits non-zero.
package main

import (
	"flag"
	"fmt"
	"log"

	hds "repro"
	"repro/internal/cliutil"
	"repro/internal/fd/oracle"
	"repro/internal/sim"
)

func main() {
	algo := flag.String("algo", "fig8", "fig8, fig9, or fig9-anon")
	n := flag.Int("n", 5, "number of processes")
	l := flag.Int("l", 2, "number of distinct identifiers (1 = anonymous, n = unique)")
	t := flag.Int("t", 2, "crash bound for fig8 (t < n/2)")
	crashes := flag.String("crashes", "", "crash schedule pid:time[,pid:time...]")
	seed := flag.Int64("seed", 1, "random seed")
	stabilize := flag.Int64("stabilize", 100, "oracle detector stabilization time")
	adversary := flag.String("adversary", "rotate", "pre-stabilization oracle behaviour: none, rotate, split")
	detectors := flag.String("detectors", "oracle", "oracle, or mp (fig8 only: the Figure 6 stack)")
	gst := flag.Int64("gst", 0, "network GST (0 = fully asynchronous reliable)")
	delta := flag.Int64("delta", 3, "post-GST latency bound")
	flag.Parse()

	sched, err := cliutil.ParseCrashes(*crashes)
	if err != nil {
		log.Fatal(err)
	}
	ids := hds.BalancedIDs(*n, *l)
	var net sim.Model = hds.Async{MaxDelay: 8}
	if *gst > 0 {
		net = hds.PartialSync{GST: *gst, Delta: *delta}
	}
	adv := map[string]oracle.Adversary{
		"none": oracle.AdversaryNone, "rotate": oracle.AdversaryRotate, "split": oracle.AdversarySplit,
	}[*adversary]

	fmt.Printf("algo=%s n=%d ℓ=%d ids=%v crashes=%s seed=%d\n", *algo, *n, *l, ids, *crashes, *seed)

	var rep hds.Report
	var stats hds.Stats
	switch *algo {
	case "fig8":
		src := hds.OracleDetectors
		if *detectors == "mp" {
			src = hds.MessagePassingDetectors
		}
		rep, stats, err = hds.RunFig8(hds.Fig8Experiment{
			IDs: ids, T: *t, Crashes: sched, Net: net,
			Detectors: src, Stabilize: *stabilize, Adversary: adv, Seed: *seed,
			Horizon: 3_000_000,
		})
	case "fig9", "fig9-anon":
		rep, stats, err = hds.RunFig9(hds.Fig9Experiment{
			IDs: ids, Crashes: sched, Net: net,
			AnonymousBaseline: *algo == "fig9-anon",
			Stabilize:         *stabilize, Adversary: adv, Seed: *seed,
			Horizon: 3_000_000,
		})
	default:
		log.Fatalf("unknown algorithm %q", *algo)
	}
	if err != nil {
		log.Fatalf("verification failed: %v", err)
	}

	fmt.Println("consensus verified ✔ (termination, validity, agreement)")
	fmt.Printf("  decided value:    %q\n", rep.Value)
	fmt.Printf("  deciders:         %d\n", rep.Deciders)
	fmt.Printf("  rounds:           %d\n", rep.MaxRound)
	fmt.Printf("  decisions span:   t=%d .. t=%d\n", rep.FirstDecision, rep.LastDecision)
	fmt.Printf("  broadcasts:       %d total — %s\n", stats.Broadcasts, cliutil.FormatTagCounts(stats.ByTag))
	fmt.Printf("  deliveries/drops: %d/%d\n", stats.Delivered, stats.Dropped)
}
