package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"os"

	hds "repro"
	"repro/internal/campaign"
	"repro/internal/cliutil"
	"repro/internal/fd/oracle"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
)

func main() {
	algo := flag.String("algo", "fig8", "fig8, fig9, fig9-anon, ohp (standalone Figure 6 detector), or heartbeat (population-scale churn workload)")
	n := flag.Int("n", 5, "number of processes")
	l := flag.Int("l", 2, "number of distinct identifiers (1 = anonymous, n = unique)")
	t := flag.Int("t", 2, "crash bound for fig8 (t < n/2)")
	crashes := flag.String("crashes", "", "crash schedule pid:time[,pid:time...]")
	churn := flag.String("churn", "", "crash-recovery churn fraction[:cycles[:down[:up]]], stagger fixed at 7 (all algorithms; consensus runs the rejoin protocol)")
	netSpec := flag.String("net", "", "network model spec (overrides -gst/-delta; see doc comment)")
	partitions := flag.String("partition", "", "partition schedule from-to@cut[,from-to@cut...]: during [from,to) links crossing pid cut are severed")
	seed := flag.Int64("seed", 1, "random seed (first seed of a sweep)")
	seeds := flag.Int("seeds", 1, "number of consecutive seeds to sweep")
	workers := flag.Int("workers", 0, "sweep parallelism (0 = all cores, 1 = serial)")
	stabilize := flag.Int64("stabilize", 100, "oracle detector stabilization time")
	adversary := flag.String("adversary", "rotate", "pre-stabilization oracle behaviour: none, rotate, split")
	detectors := flag.String("detectors", "oracle", "oracle, or mp (fig8 only: the Figure 6 stack)")
	gst := flag.Int64("gst", 0, "network GST (0 = fully asynchronous reliable)")
	delta := flag.Int64("delta", 3, "post-GST latency bound")
	horizon := flag.Int64("horizon", 0, "virtual-time horizon (0 = algorithm default)")
	period := flag.Int64("period", 15, "heartbeat beat interval (heartbeat only)")
	beaters := flag.Int("beaters", 0, "how many processes beat, the rest listen (heartbeat only; 0 = all n)")
	maxEvents := flag.Int("max-events", 0, "override the engine's runaway-guard event cap (0 = engine default)")
	tracePath := flag.String("trace", "", "stream the full event trace to this file (single runs only)")
	replayPath := flag.String("replay", "", "re-verify a recorded run offline from its v2 binary trace (engine-free; every other scenario flag is ignored — the trace's embedded fingerprint wins)")
	traceBuf := flag.Int("trace-buf", 0, "trace spill batch size in events (0 = default 4096)")
	traceFormat := flag.String("trace-format", "text", "trace encoding: text (canonical lines) or binary (compact varint stream, decode with trace.ReadBinary)")
	campaignFlags := cliutil.CampaignFlags(flag.CommandLine)
	flag.Parse()
	sweep.SetDefaultWorkers(*workers)

	if *replayPath != "" {
		runReplay(*replayPath)
		return
	}

	// meta is the scenario fingerprint stamped on binary traces: the flag
	// surface verbatim, so offline replay resolves it through the same
	// parsers and defaulting rules this run is about to use.
	meta := &trace.Meta{
		Algo: *algo, N: *n, L: *l, T: *t,
		Crashes: *crashes, Churn: *churn, Net: *netSpec, Partitions: *partitions,
		GST: *gst, Delta: *delta, Seed: *seed,
		Stabilize: *stabilize, Adversary: *adversary, Detectors: *detectors,
		Horizon: *horizon, Period: *period, Beaters: *beaters, MaxEvents: *maxEvents,
	}

	// The trace is spilled in batches through a trace.Sink, so a huge
	// run's trace streams to disk in constant memory instead of
	// accumulating events in the recorder. -trace-format binary swaps the
	// canonical text sink for the compact varint encoding — roughly an
	// order of magnitude smaller and free of per-event formatting, which
	// is what keeps population-scale traced runs disk- and CPU-viable.
	var traceRec *trace.Recorder
	var traceFile *os.File
	if err := cliutil.ValidateTraceBuf(*traceBuf); err != nil {
		log.Fatal(err)
	}
	if err := cliutil.ValidateTraceFormat(*traceFormat, *tracePath); err != nil {
		log.Fatal(err)
	}
	if err := cliutil.ValidateBeaters(*beaters, *n); err != nil {
		log.Fatal(err)
	}
	if *tracePath != "" {
		if *seeds > 1 {
			log.Fatal("-trace applies to single runs: seed sweeps would interleave unrelated traces")
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		traceFile = f
		var sink trace.Sink
		switch *traceFormat {
		case "text":
			sink = trace.NewWriterSink(f)
		case "binary":
			bs := trace.NewBinarySink(f)
			bs.SetMeta(meta)
			sink = bs
		default:
			log.Fatalf("-trace-format %q: want text or binary", *traceFormat)
		}
		traceRec = trace.NewSpillRecorder(sink, *traceBuf)
	}
	if traceRec != nil {
		// Fatal exits must flush too: a failed run is exactly when the
		// trace leading up to the failure matters, and log.Fatal skips
		// defers. Errors are ignored here — the process is already dying
		// with its own message.
		flushTraceOnExit = func() {
			traceRec.Flush()
			traceFile.Close()
		}
	}
	closeTrace := func() {
		if traceRec == nil {
			return
		}
		if err := traceRec.Flush(); err != nil {
			log.Fatalf("trace: %v", err)
		}
		if err := traceFile.Close(); err != nil {
			log.Fatalf("trace: %v", err)
		}
		s := traceRec.Stats()
		fmt.Printf("  trace:            %s (%d deliveries, %d drops)\n", *tracePath, s.Delivered, s.Dropped)
	}

	campaignCfg, err := campaignFlags()
	if err != nil {
		log.Fatal(err)
	}
	if *seeds <= 1 && (campaignCfg.Shards > 1 || campaignCfg.Dir != "" || campaignCfg.Resume) {
		log.Fatal("-shards/-shard/-checkpoint-dir/-resume apply to seed sweeps: set -seeds > 1")
	}

	sched, err := cliutil.ParseCrashes(*crashes)
	if err != nil {
		log.Fatal(err)
	}
	churnSpec, err := cliutil.ParseChurn(*churn)
	if err != nil {
		log.Fatal(err)
	}
	ids := hds.BalancedIDs(*n, *l)
	var net sim.Model = hds.Async{MaxDelay: 8}
	if *gst > 0 {
		net = hds.PartialSync{GST: *gst, Delta: *delta}
	}
	if *netSpec != "" {
		if net, err = cliutil.ParseNet(*netSpec); err != nil {
			log.Fatal(err)
		}
	}
	if *partitions != "" {
		ws, err := cliutil.ParsePartitions(*partitions)
		if err != nil {
			log.Fatal(err)
		}
		if err := cliutil.ValidatePartitionN(ws, *n); err != nil {
			log.Fatal(err)
		}
		// Horizon validation runs against the horizon the run will actually
		// use; 0 means "algorithm default", which every algorithm sets far
		// beyond any sane window schedule, so only an explicit -horizon is
		// checked here (consensus re-checks against its expanded default).
		if *horizon > 0 {
			if err := cliutil.ValidatePartitionHorizon(ws, *horizon); err != nil {
				log.Fatal(err)
			}
		}
		net = sim.Partition{Base: net, Windows: ws}
	}
	adv := map[string]oracle.Adversary{
		"none": oracle.AdversaryNone, "rotate": oracle.AdversaryRotate, "split": oracle.AdversarySplit,
	}[*adversary]

	if *algo == "ohp" {
		if *seeds > 1 {
			log.Fatal("-seeds > 1 is not supported with -algo ohp; sweep seeds with the consensus algorithms or via internal/sweep")
		}
		runOHP(meta, ids, net, *netSpec != "" || *gst > 0, sched, churnSpec, *gst, *delta, *seed, *horizon, traceRec)
		closeTrace()
		return
	}
	if *algo == "heartbeat" {
		if *seeds > 1 {
			log.Fatal("-seeds > 1 is not supported with -algo heartbeat; sweep seeds via internal/sweep")
		}
		if len(sched) > 0 {
			log.Fatal("-algo heartbeat takes a -churn spec, not -crashes")
		}
		runHeartbeat(meta, ids, net, churnSpec, *period, *beaters, *maxEvents, *seed, *horizon, traceRec)
		closeTrace()
		return
	}
	consensusHorizon := *horizon
	if consensusHorizon <= 0 {
		consensusHorizon = 3_000_000
	}

	// churnRes keeps the churn-specific numbers of a single consensus run
	// for the report below; sweeps aggregate through Report/Stats only, so
	// it is written exclusively in the single-run (serial) case.
	var churnRes *hds.ChurnConsensusResult
	single := *seeds <= 1
	runOne := func(seed int64) (hds.Report, hds.Stats, error) {
		switch *algo {
		case "fig8":
			src := hds.OracleDetectors
			if *detectors == "mp" {
				src = hds.MessagePassingDetectors
			}
			if churnSpec.Fraction > 0 {
				res, err := hds.RunChurnFig8(hds.ChurnFig8Experiment{
					IDs: ids, T: *t, Churn: churnSpec, Crashes: sched, Net: net,
					Detectors: src, Stabilize: *stabilize, Adversary: adv, Seed: seed,
					Horizon: consensusHorizon, Trace: traceRec,
				})
				if single {
					churnRes = &res
				}
				return res.Report, res.Stats, err
			}
			return hds.RunFig8(hds.Fig8Experiment{
				IDs: ids, T: *t, Crashes: sched, Net: net,
				Detectors: src, Stabilize: *stabilize, Adversary: adv, Seed: seed,
				Horizon: consensusHorizon, Trace: traceRec,
			})
		case "fig9", "fig9-anon":
			if churnSpec.Fraction > 0 {
				res, err := hds.RunChurnFig9(hds.ChurnFig9Experiment{
					IDs: ids, Churn: churnSpec, Crashes: sched, Net: net,
					AnonymousBaseline: *algo == "fig9-anon",
					Stabilize:         *stabilize, Adversary: adv, Seed: seed,
					Horizon: consensusHorizon, Trace: traceRec,
				})
				if single {
					churnRes = &res
				}
				return res.Report, res.Stats, err
			}
			return hds.RunFig9(hds.Fig9Experiment{
				IDs: ids, Crashes: sched, Net: net,
				AnonymousBaseline: *algo == "fig9-anon",
				Stabilize:         *stabilize, Adversary: adv, Seed: seed,
				Horizon: consensusHorizon, Trace: traceRec,
			})
		default:
			log.Fatalf("unknown algorithm %q", *algo)
			panic("unreachable")
		}
	}

	if *seeds > 1 {
		// Everything that defines the scenario goes into the fingerprint:
		// checkpoints are only interchangeable between runs of the exact
		// same scenario, and a digest alone cannot tell scenarios apart.
		scenario := fmt.Sprintf("algo=%s ids=%v t=%d crashes=%s churn=%s net=%s detectors=%s stabilize=%d adversary=%s horizon=%d",
			*algo, ids, *t, *crashes, *churn, net, *detectors, *stabilize, *adversary, consensusHorizon)
		runSweep(campaignCfg, *algo, ids, *crashes, scenario, *seed, *seeds, runOne)
		return
	}

	replay.WriteConsensusHeader(os.Stdout, &replay.Scenario{Meta: meta, IDs: ids})
	rep, stats, err := runOne(*seed)
	if err != nil {
		fatalf("verification failed: %v", err)
	}

	var ci *replay.ChurnInfo
	if churnRes != nil {
		ci = &replay.ChurnInfo{
			EventuallyUp: churnRes.EventuallyUp, Correct: churnRes.Correct,
			Recoveries: churnRes.Recoveries, LastChange: churnRes.LastChange,
			DecideAfterChurn: churnRes.DecideAfterChurn,
		}
	}
	replay.WriteConsensusBlock(os.Stdout, *n, rep, ci, stats)
	closeTrace()
}

// flushTraceOnExit, when set, pushes a partial spilled trace to disk
// before a fatal exit; fatalf routes every post-setup failure through it.
var flushTraceOnExit func()

// fatalf is log.Fatalf plus a best-effort trace flush, so -trace files
// keep the events leading up to a verification failure.
func fatalf(format string, args ...any) {
	if flushTraceOnExit != nil {
		flushTraceOnExit()
	}
	log.Fatalf(format, args...)
}

// runOHP runs the standalone Figure 6 detector — crash-stop (verified
// ◇HP̄/HΩ class properties) or, with a churn spec, crash-recovery churn
// (verified against the eventually-up ground truth).
func runOHP(meta *trace.Meta, ids hds.Assignment, net sim.Model, netGiven bool, crashes map[hds.PID]hds.Time,
	churn hds.ChurnSpec, gst, delta int64, seed, horizon int64, traceRec *trace.Recorder) {
	if churn.Fraction > 0 {
		if len(crashes) > 0 {
			fatalf("use either -churn or -crashes for -algo ohp, not both")
		}
		// -net or -gst/-delta override the churn default (PartialSync{δ=3}).
		var cnet sim.Model
		if netGiven {
			cnet = net
		}
		effective := cnet
		if effective == nil {
			effective = sim.PartialSync{Delta: 3}
		}
		replay.WriteOHPHeader(os.Stdout, &replay.Scenario{Meta: meta, IDs: ids, Churn: churn, Net: effective})
		res, err := hds.RunChurnOHP(hds.ChurnOHPExperiment{
			IDs: ids, Churn: churn, Net: cnet, Seed: seed, Horizon: horizon, Trace: traceRec,
		})
		if err != nil {
			fatalf("verification failed: %v", err)
		}
		replay.WriteChurnOHPBlock(os.Stdout, ids.N(), res)
		return
	}
	exp := hds.OHPExperiment{IDs: ids, Crashes: crashes, GST: gst, Delta: delta, Seed: seed, Horizon: horizon, Trace: traceRec}
	var effective sim.Model = sim.PartialSync{GST: gst, Delta: delta} // RunOHP's default
	if netGiven {
		exp.Net = net
		effective = net
	}
	replay.WriteOHPHeader(os.Stdout, &replay.Scenario{Meta: meta, IDs: ids, Crashes: crashes, Net: effective})
	res, err := hds.RunOHP(exp)
	if err != nil {
		fatalf("verification failed: %v", err)
	}
	replay.WriteOHPBlock(os.Stdout, res)
}

// runHeartbeat runs the population-scale heartbeat churn workload with
// streaming verification on: engine fault bookkeeping is cross-checked
// against the schedule-derived ground truth, per-process delivery
// counters against the recorder's delivery total, and delivery liveness
// through a streaming probe — all in memory independent of the event
// count, which is what lets -n reach 50,000.
func runHeartbeat(meta *trace.Meta, ids hds.Assignment, net sim.Model, churn hds.ChurnSpec,
	period int64, beaters, maxEvents int, seed, horizon int64, traceRec *trace.Recorder) {
	replay.WriteHeartbeatHeader(os.Stdout, &replay.Scenario{Meta: meta, IDs: ids, Churn: churn, Net: net})
	res, err := hds.RunHeartbeatChurn(hds.HeartbeatExperiment{
		IDs: ids, Churn: churn, Net: net, Period: period, Seed: seed,
		Horizon: horizon, Beaters: beaters, MaxEvents: maxEvents,
		Trace: traceRec, StreamVerify: true,
	})
	if err != nil {
		fatalf("verification failed: %v", err)
	}
	replay.WriteHeartbeatBlock(os.Stdout, ids.N(), res, true)
}

// runReplay re-verifies a recorded run from its trace alone: the scenario
// comes from the embedded fingerprint, the checker inputs from the event
// stream, and the verdict prints through the same renderers the live run
// used. Events stream through the reader one at a time, so population-
// scale traces re-verify in constant memory.
func runReplay(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewBinaryReader(f)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	if err := replay.Verify(r.Meta(), r, os.Stdout); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
}

// seedRow is one seed's result in a sweep campaign. It is flat and
// JSON-lossless on purpose: rows round-trip through shard checkpoints, so
// the campaign determinism contract requires exact encode/decode.
type seedRow struct {
	Seed       int64  `json:"seed"`
	Rounds     int    `json:"rounds"`
	Decided    int64  `json:"decided"` // virtual time of the last decision
	Broadcasts int    `json:"broadcasts"`
	Err        string `json:"err,omitempty"`
}

// runSweep executes the scenario across consecutive seeds through the
// campaign layer (sharded/checkpointed/resumable when configured) and
// prints per-seed rows plus min/mean/max aggregates. The campaign id
// carries a hash of the full scenario fingerprint, so checkpoints from a
// run with different flags (-crashes, -net, -gst, -t, …) never verify
// against this campaign on -resume.
func runSweep(cfg campaign.Config, algo string, ids hds.Assignment, crashes, scenario string, first int64, k int, runOne func(int64) (hds.Report, hds.Stats, error)) {
	fp := fnv.New64a()
	fp.Write([]byte(scenario))
	id := fmt.Sprintf("hdsim-%s-n%d-l%d-seed%d-x%d-%016x", algo, ids.N(), ids.DistinctCount(), first, k, fp.Sum64())
	res, err := campaign.Run(cfg, id, k, func(i int) seedRow {
		s := first + int64(i)
		rep, stats, err := runOne(s)
		if err != nil {
			return seedRow{Seed: s, Err: err.Error()}
		}
		return seedRow{Seed: s, Rounds: rep.MaxRound, Decided: int64(rep.LastDecision), Broadcasts: stats.Broadcasts}
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Complete {
		fmt.Printf("campaign %s: shard %d/%d checkpointed in %s (merge with -resume)\n", id, cfg.Shard, cfg.Shards, cfg.Dir)
		return
	}
	fmt.Printf("algo=%s ids=%v crashes=%s seeds=%d..%d workers=%d campaign=%s digest=%.12s\n",
		algo, ids, crashes, first, first+int64(k)-1, sweep.DefaultWorkers(), id, res.Digest)

	var (
		failures                        int
		minD, maxD, sumD                int64
		minRounds, maxRounds, sumRounds int
		sumBcast                        int
	)
	minD, minRounds = -1, -1
	for _, r := range res.Rows {
		if r.Err != "" {
			failures++
			fmt.Printf("  seed=%-5d ✗ %v\n", r.Seed, r.Err)
			continue
		}
		fmt.Printf("  seed=%-5d rounds=%-3d decided=t=%-8d broadcasts=%d\n",
			r.Seed, r.Rounds, r.Decided, r.Broadcasts)
		if minD < 0 || r.Decided < minD {
			minD = r.Decided
		}
		if r.Decided > maxD {
			maxD = r.Decided
		}
		sumD += r.Decided
		if minRounds < 0 || r.Rounds < minRounds {
			minRounds = r.Rounds
		}
		if r.Rounds > maxRounds {
			maxRounds = r.Rounds
		}
		sumRounds += r.Rounds
		sumBcast += r.Broadcasts
	}
	okRuns := k - failures
	if okRuns == 0 {
		log.Fatalf("all %d runs failed verification", k)
	}
	fmt.Printf("verified %d/%d runs ✔\n", okRuns, k)
	fmt.Printf("  decided at (vt): min=%d mean=%.1f max=%d\n", minD, float64(sumD)/float64(okRuns), maxD)
	fmt.Printf("  rounds:          min=%d mean=%.1f max=%d\n", minRounds, float64(sumRounds)/float64(okRuns), maxRounds)
	fmt.Printf("  broadcasts:      mean=%.1f\n", float64(sumBcast)/float64(okRuns))
	if failures > 0 {
		log.Fatalf("%d/%d runs failed verification", failures, k)
	}
}
