// Command hdsim runs one verified experiment on the simulator:
//
//	go run ./cmd/hdsim -algo fig8 -n 5 -l 2 -t 2 -crashes 1:30
//	go run ./cmd/hdsim -algo fig9 -n 6 -l 3 -crashes 0:20,1:40,2:60,3:80
//	go run ./cmd/hdsim -algo fig8 -detectors mp -gst 80 -delta 3
//	go run ./cmd/hdsim -algo fig8 -net pareto:1.5:15
//	go run ./cmd/hdsim -algo ohp -n 12 -l 4 -churn 0.25:2:40:60
//	go run ./cmd/hdsim -algo fig8 -n 5 -l 2 -t 2 -churn 0.3:1:60
//	go run ./cmd/hdsim -algo fig9 -n 6 -l 3 -churn 0.34:2:40:50
//	go run ./cmd/hdsim -algo heartbeat -n 50000 -l 200 -beaters 100 -churn 0.05:1:12:20:0 -horizon 45 -max-events 100000000
//
// Algorithms: fig8 = HAS[t<n/2, HΩ] (Theorem 7); fig9 = HAS[HΩ, HΣ]
// (Theorem 8, any number of crashes); fig9-anon = the anonymous AΩ
// baseline; ohp = the standalone Figure 6 detector (◇HP̄ → HΩ); heartbeat
// = the population-scale churn workload (lazy broadcast fan-out plus
// streaming verification, constant memory in the event count — the E21
// scenario). Every run is verified (consensus properties, detector class
// properties, or — for heartbeat — ground-truth churn bookkeeping,
// delivery accounting, and delivery liveness) before results are printed;
// a verification failure exits non-zero.
//
// heartbeat-only flags: -period sets the beat interval; -beaters caps how
// many processes beat (0 = all n; the rest only listen, so event volume
// is Θ(beaters·n) while every broadcast still fans out to all n live
// recipients); -max-events overrides the engine's runaway-guard cap.
//
// -churn adds a crash-recovery churn schedule to any algorithm. Under ohp
// the detector's churn-restated class properties are verified; under the
// consensus algorithms the recovered processes rejoin through the
// (REJOIN, r) round-resync protocol and the crash-recovery consensus
// properties are checked: Termination over the eventually-up set, decision
// stability across outages, and relayed decisions reporting the round the
// decision was actually reached in. -crashes may be combined with -churn
// for additional permanent crashes of non-churning processes (fig8's -t
// budget covers churners and permanent crashes alike).
//
// -net selects the delay model (see cliutil.ParseNet): async[:max],
// psync:gst:delta, timely[:δ], pareto[:α[:cap]], lognormal[:σ[:cap]],
// alt[:period[:calm]], asym[:skew]. It overrides -gst/-delta.
//
// -trace FILE streams the run's full event trace to FILE. -trace-format
// selects the sink: text (the default; one event per line, the canonical
// trace.WriteText rendering) or binary (a compact varint stream, ~6
// bytes/event, decoded with trace.ReadBinary). Either way the trace is
// spilled in batches of -trace-buf events (negative values are rejected),
// so even a multi-million-event run traces in constant memory. Single
// runs only. Binary traces embed the full scenario fingerprint and a
// seekable frame index (internal/trace v2 format).
//
// -replay FILE re-verifies a recorded run offline from its binary trace:
//
//	go run ./cmd/hdsim -algo fig8 -churn 0.4:1 -trace run.bin -trace-format binary
//	go run ./cmd/hdsim -replay run.bin
//
// No engine runs — the scenario is reconstructed from the fingerprint
// embedded in the trace (every other flag is ignored), the checkers
// consume the recorded events, and the verdict report is byte-identical
// to the live run's apart from engine-only counters. Replay streams the
// trace eventwise, so population-scale runs re-verify in constant
// memory. See also cmd/tracediff for localizing the first divergent
// event between two recorded traces.
//
// With -seeds k > 1 the same scenario is swept over k consecutive seeds in
// parallel across all cores (deterministically: the report is identical
// for any -workers value), and per-seed rows plus aggregates are printed:
//
//	go run ./cmd/hdsim -algo fig8 -n 7 -l 3 -t 3 -crashes 1:30 -seeds 64
//
// Seed sweeps are campaigns: -shards/-shard/-checkpoint-dir/-resume shard
// the seed list into checkpointed batches exactly as in cmd/experiments,
// so a large sweep can fan out across processes and resume after a kill:
//
//	go run ./cmd/hdsim -algo fig8 -seeds 64 -shards 4 -shard 2 -checkpoint-dir ckpt
//	go run ./cmd/hdsim -algo fig8 -seeds 64 -shards 4 -checkpoint-dir ckpt -resume
package main
