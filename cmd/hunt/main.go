// Command hunt is the scenario fuzzer's CLI: coverage-guided campaigns
// over the repository's verified runners, deterministic find/shrink logs,
// and corpus maintenance (replay, pin, export).
//
// Modes:
//
//	hunt -budget 200 -seed 1 [-out dir]    fuzz; write minimized findings as corpus entries
//	hunt -replay dir-or-file               replay corpus entries against pinned verdicts
//	hunt -run scenario.json                run one scenario (or corpus entry) and print its verdict
//	hunt -pin entry.json                   re-run an entry and rewrite it with the current verdict
//
// Campaign determinism: the same -seed and -budget produce byte-identical
// logs and findings at any -workers value (see internal/hunt's package
// doc). Logs go to stdout; timestamps never appear in them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/hunt"
	"repro/internal/sweep"
)

func main() {
	budget := flag.Int("budget", 200, "scenario executions to spend exploring (excludes shrink runs)")
	seed := flag.Int64("seed", 1, "campaign master seed (drives every mutation draw)")
	batch := flag.Int("batch", 16, "mutants per generation")
	workers := flag.Int("workers", 0, "execution parallelism (0 = all cores, 1 = serial); never changes results")
	out := flag.String("out", "", "directory to write minimized findings as corpus entries (fuzz mode)")
	replay := flag.String("replay", "", "replay corpus entries from this file or directory")
	run := flag.String("run", "", "run one scenario or corpus-entry JSON file and print the verdict")
	pin := flag.String("pin", "", "re-run a corpus entry and rewrite its pinned verdict in place")
	flag.Parse()
	sweep.SetDefaultWorkers(*workers)

	switch {
	case *replay != "":
		replayCorpus(*replay)
	case *run != "":
		runOne(*run)
	case *pin != "":
		pinEntry(*pin)
	default:
		fuzz(*budget, *seed, *batch, *out)
	}
}

func fuzz(budget int, seed int64, batch int, out string) {
	res := hunt.Fuzz(hunt.FuzzConfig{
		MasterSeed: seed,
		Budget:     budget,
		BatchSize:  batch,
		Log:        os.Stdout,
	})
	if out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			log.Fatal(err)
		}
		for i, f := range res.Findings {
			e := hunt.Entry{
				Name:     fmt.Sprintf("%s-%s-%d", f.Minimal.Kind, f.Class, i),
				Note:     fmt.Sprintf("found by hunt -seed %d; shrunk %d->%d; original: %s", seed, f.ShrunkFrom, f.ShrunkTo, f.Scenario.Fingerprint()),
				Scenario: f.Minimal,
				Want:     f.MinimalOutcome,
			}
			b, err := hunt.EncodeEntry(e)
			if err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(out, e.Name+".json")
			if err := os.WriteFile(path, b, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if len(res.Findings) > 0 {
		os.Exit(1)
	}
}

// corpusFiles expands a file-or-directory path into the sorted list of
// its .json entries.
func corpusFiles(path string) []string {
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	if !info.IsDir() {
		return []string{path}
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		log.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			files = append(files, filepath.Join(path, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		log.Fatalf("no corpus entries (*.json) under %s", path)
	}
	return files
}

func replayCorpus(path string) {
	failures := 0
	for _, file := range corpusFiles(path) {
		b, err := os.ReadFile(file)
		if err != nil {
			log.Fatal(err)
		}
		e, err := hunt.DecodeEntry(b)
		if err != nil {
			log.Fatal(err)
		}
		if err := hunt.Replay(e); err != nil {
			failures++
			fmt.Printf("✗ %s\n  %v\n", e.Name, err)
			continue
		}
		fmt.Printf("✓ %s — %s\n", e.Name, e.Want)
	}
	if failures > 0 {
		log.Fatalf("%d corpus entries drifted", failures)
	}
}

// loadScenario reads either a bare Scenario or a full corpus Entry.
func loadScenario(file string) hunt.Scenario {
	b, err := os.ReadFile(file)
	if err != nil {
		log.Fatal(err)
	}
	if e, err := hunt.DecodeEntry(b); err == nil {
		return e.Scenario
	}
	var s hunt.Scenario
	if err := json.Unmarshal(b, &s); err != nil {
		log.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		log.Fatal(err)
	}
	return s
}

func runOne(file string) {
	s := loadScenario(file)
	o := s.Run()
	fmt.Printf("%s\n%s\n", s.Fingerprint(), o.Verdict)
	if o.Failed() {
		os.Exit(1)
	}
}

func pinEntry(file string) {
	b, err := os.ReadFile(file)
	if err != nil {
		log.Fatal(err)
	}
	e, err := hunt.DecodeEntry(b)
	if err != nil {
		log.Fatal(err)
	}
	e.Want = e.Scenario.Run().Verdict
	nb, err := hunt.EncodeEntry(e)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(file, nb, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pinned %s — %s\n", e.Name, e.Want)
}
