// Command detlint runs the determinism-contract analyzers
// (repro/internal/analysis) over the tree and fails on any unsuppressed
// diagnostic — the static counterpart to the serial-vs-parallel equality
// tests, wired into CI next to gofmt and go vet.
//
// Usage:
//
//	go run ./cmd/detlint ./...          # lint; exit 1 on findings
//	go run ./cmd/detlint -ignores ./... # list justified suppressions
//	go run ./cmd/detlint -analyzers     # describe the suite
//
// A finding is either fixed or suppressed in place with
//
//	//detlint:ignore <analyzer> <reason>
//
// on (or directly above) the offending line. Missing or empty reasons
// are themselves diagnostics: the suppression inventory (-ignores) is
// the audit trail of every standing exception to the determinism
// contracts in ARCHITECTURE.md.
package main
