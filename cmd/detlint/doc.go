// Command detlint runs the determinism-contract analyzers
// (repro/internal/analysis) over the tree and fails on any unsuppressed
// diagnostic — the static counterpart to the serial-vs-parallel equality
// tests, wired into CI next to gofmt and go vet.
//
// Usage:
//
//	go run ./cmd/detlint -flow ./...    # lint incl. interprocedural taint
//	go run ./cmd/detlint ./...          # leaf analyzers only
//	go run ./cmd/detlint -json ./...    # diagnostics as sorted JSON
//	go run ./cmd/detlint -ignores ./... # list justified suppressions
//	go run ./cmd/detlint -analyzers     # describe the suite
//
//	go run ./cmd/detlint -flow -report ./... > detflow_report.txt
//
// -flow adds detflow, the whole-module interprocedural pass: the leaf
// analyzers' nondeterminism sources are recognized in every package and
// propagated over the call graph, so a wall-clock read laundered through
// a helper — even one in an exempt package — is reported at the
// deterministic-side call site with its full call chain. -report (with
// -flow) prints the certified-deterministic API report instead of
// diagnostics: every exported function of the deterministic packages,
// marked clean, suppressed (with reasons), or TAINTED (with a witness
// chain). The report is byte-stable; CI diffs it against the checked-in
// detflow_report.txt, and diffs the -ignores inventory against
// detlint_ignores.txt, so both the exception set and the certified
// surface only change through reviewed baseline diffs.
//
// A finding is either fixed or suppressed in place with
//
//	//detlint:ignore <analyzer> <reason>
//
// on (or directly above) the offending line; analyzer "detflow" vets
// one call edge of the flow pass. Missing or empty reasons are
// themselves diagnostics: the suppression inventory (-ignores) is the
// audit trail of every standing exception to the determinism contracts
// in ARCHITECTURE.md.
package main
