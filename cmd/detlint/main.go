package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	ignores := flag.Bool("ignores", false, "list every //detlint:ignore suppression (file:line analyzer reason) instead of diagnostics")
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	flow := flag.Bool("flow", false, "also run detflow, the whole-module interprocedural nondeterminism taint analysis")
	report := flag.Bool("report", false, "with -flow: print the certified-deterministic API report instead of diagnostics")
	jsonOut := flag.Bool("json", false, "render diagnostics as a JSON array (machine-readable, byte-stable)")
	flag.Usage = usage
	flag.Parse()

	if *report && !*flow {
		fail(fmt.Errorf("-report requires -flow"))
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	module, root, err := findModule()
	if err != nil {
		fail(err)
	}
	dirs, err := expand(root, patterns)
	if err != nil {
		fail(err)
	}

	loader := analysis.NewLoader(module, root, "")
	var (
		units   []*analysis.Unit
		diags   []analysis.Diagnostic
		sups    []analysis.Suppression
		badSups []error
	)
	for _, dir := range dirs {
		pkgPath := module
		if rel, _ := filepath.Rel(root, dir); rel != "." {
			pkgPath = module + "/" + filepath.ToSlash(rel)
		}
		us, err := loader.LoadDir(pkgPath, dir)
		if err != nil {
			fail(err)
		}
		for _, unit := range us {
			d, s, errs := analysis.RunUnit(loader, unit, analysis.All())
			units = append(units, unit)
			diags = append(diags, d...)
			sups = append(sups, s...)
			badSups = append(badSups, errs...)
		}
	}

	if *flow {
		fl := analysis.NewFlow(loader.Fset, units, root, sups)
		if *report {
			for _, err := range badSups {
				fmt.Fprintln(os.Stderr, err)
			}
			if len(badSups) > 0 {
				os.Exit(1)
			}
			fmt.Print(fl.Report())
			return
		}
		diags = append(diags, fl.Diagnostics()...)
	}

	if *ignores {
		sort.Slice(sups, func(i, j int) bool {
			a, b := sups[i], sups[j]
			if a.Pos.Filename != b.Pos.Filename {
				return a.Pos.Filename < b.Pos.Filename
			}
			return a.Pos.Line < b.Pos.Line
		})
		for _, s := range sups {
			rel := s.Pos.Filename
			if r, err := filepath.Rel(root, rel); err == nil {
				rel = r
			}
			fmt.Printf("%s:%d: %s: %s\n", rel, s.Pos.Line, s.Analyzer, s.Reason)
		}
	}

	exit := 0
	for _, err := range badSups {
		fmt.Fprintln(os.Stderr, err)
		exit = 1
	}
	if !*ignores {
		for i, d := range diags {
			if r, err := filepath.Rel(root, d.Pos.Filename); err == nil {
				diags[i].Pos.Filename = r
			}
		}
		analysis.SortDiagnostics(diags)
		if *jsonOut {
			os.Stdout.Write(analysis.DiagnosticsJSON(diags))
			if len(diags) > 0 {
				exit = 1
			}
		} else {
			for _, d := range diags {
				fmt.Println(d)
				exit = 1
			}
		}
	}
	os.Exit(exit)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: detlint [-flow] [-report] [-json] [-ignores] [-analyzers] [packages]

detlint statically enforces this repo's determinism contracts
(ARCHITECTURE.md) over the given package patterns (default ./...).
-flow adds the interprocedural taint pass (nondeterminism laundered
through helpers and exempt packages); -flow -report prints the
certified-deterministic API report instead. Suppress a finding with an
adjacent "//detlint:ignore <analyzer> <reason>" comment; the reason is
mandatory.

Flags:
`)
	flag.PrintDefaults()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "detlint:", err)
	os.Exit(2)
}

// findModule walks up from the working directory to go.mod and reads the
// module path.
func findModule() (module, root string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if f, err := os.Open(gomod); err == nil {
			defer f.Close()
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if name, ok := strings.CutPrefix(line, "module "); ok {
					return strings.TrimSpace(name), dir, nil
				}
			}
			return "", "", fmt.Errorf("%s: no module line", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// expand resolves package patterns to directories. "dir/..." walks
// recursively; anything else names a single directory. testdata, hidden
// directories, and nested modules are skipped, matching the go tool.
func expand(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if pat == "." {
			base = root
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if path != base {
				if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
					return filepath.SkipDir
				}
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
