package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	ignores := flag.Bool("ignores", false, "list every //detlint:ignore suppression (file:line analyzer reason) instead of diagnostics")
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	flag.Usage = usage
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	module, root, err := findModule()
	if err != nil {
		fail(err)
	}
	dirs, err := expand(root, patterns)
	if err != nil {
		fail(err)
	}

	loader := analysis.NewLoader(module, root, "")
	var (
		diags   []analysis.Diagnostic
		sups    []analysis.Suppression
		badSups []error
	)
	for _, dir := range dirs {
		pkgPath := module
		if rel, _ := filepath.Rel(root, dir); rel != "." {
			pkgPath = module + "/" + filepath.ToSlash(rel)
		}
		units, err := loader.LoadDir(pkgPath, dir)
		if err != nil {
			fail(err)
		}
		for _, unit := range units {
			d, s, errs := analysis.RunUnit(loader, unit, analysis.All())
			diags = append(diags, d...)
			sups = append(sups, s...)
			badSups = append(badSups, errs...)
		}
	}

	if *ignores {
		sort.Slice(sups, func(i, j int) bool {
			a, b := sups[i], sups[j]
			if a.Pos.Filename != b.Pos.Filename {
				return a.Pos.Filename < b.Pos.Filename
			}
			return a.Pos.Line < b.Pos.Line
		})
		for _, s := range sups {
			rel := s.Pos.Filename
			if r, err := filepath.Rel(root, rel); err == nil {
				rel = r
			}
			fmt.Printf("%s:%d: %s: %s\n", rel, s.Pos.Line, s.Analyzer, s.Reason)
		}
	}

	exit := 0
	for _, err := range badSups {
		fmt.Fprintln(os.Stderr, err)
		exit = 1
	}
	if !*ignores {
		analysis.SortDiagnostics(diags)
		for _, d := range diags {
			rel := d
			if r, err := filepath.Rel(root, d.Pos.Filename); err == nil {
				rel.Pos.Filename = r
			}
			fmt.Println(rel)
			exit = 1
		}
	}
	os.Exit(exit)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: detlint [-ignores] [-analyzers] [packages]

detlint statically enforces this repo's determinism contracts
(ARCHITECTURE.md) over the given package patterns (default ./...).
Suppress a finding with an adjacent "//detlint:ignore <analyzer>
<reason>" comment; the reason is mandatory.

Flags:
`)
	flag.PrintDefaults()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "detlint:", err)
	os.Exit(2)
}

// findModule walks up from the working directory to go.mod and reads the
// module path.
func findModule() (module, root string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if f, err := os.Open(gomod); err == nil {
			defer f.Close()
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if name, ok := strings.CutPrefix(line, "module "); ok {
					return strings.TrimSpace(name), dir, nil
				}
			}
			return "", "", fmt.Errorf("%s: no module line", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// expand resolves package patterns to directories. "dir/..." walks
// recursively; anything else names a single directory. testdata, hidden
// directories, and nested modules are skipped, matching the go tool.
func expand(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if pat == "." {
			base = root
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if path != base {
				if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
					return filepath.SkipDir
				}
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
