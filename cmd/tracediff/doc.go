/*
Command tracediff compares two recorded traces and localizes their first
divergence — the determinism debugging primitive: two runs of the same
scenario must produce byte-identical traces, so when a regression breaks
that contract, the question is never "are they different?" but "which
event diverged first?".

	tracediff <trace-a> <trace-b>

Both arguments are trace files written by hdsim's -trace flag (either
format version; -trace-format binary). The comparison happens in two
parts:

Scenario fingerprints. v2 traces embed the flag-level scenario metadata;
tracediff prints whether the fingerprints agree. Traces of different
scenarios are expected to diverge — the interesting case is two runs of
the same fingerprint that differ anyway.

Events. With two finalized v2 traces whose frames align (same spill
stride), the footer index makes the search logarithmic: each frame
record carries the cumulative digest of every body byte before it, so a
binary search over frame boundaries pins the divergent frame and only
that frame pair is decoded — a multi-gigabyte trace pair diffs by
reading two index sections and one frame from each file. v1 traces,
unfinalized traces (a run that died before its trailer), and mismatched
strides fall back to a linear lockstep scan of both bodies in constant
memory.

The first divergent event is reported with its global ordinal and both
renderings:

	meta: identical — {"algo":"ohp","n":5,"l":2,...,"seed":1}
	events: first divergence at event 100 (frame 0)
	  a: t=55 p2 deliver ALIVE g001|g002
	  b: t=55 p2 deliver ALIVE g001|g002 [skew]

Exit status: 0 when the traces are identical (fingerprint and events),
1 on any divergence, 2 on usage or I/O errors.
*/
package main
