// Command tracediff localizes the first divergence between two recorded
// traces. See doc.go for usage and exit codes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/trace"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tracediff <trace-a> <trace-b>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	a, err := open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer a.close()
	b, err := open(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	defer b.close()

	metaOK := compareMeta(a, b)
	identical, err := compareEvents(a, b)
	if err != nil {
		fatal(err)
	}
	if identical && metaOK {
		os.Exit(0)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracediff: %v\n", err)
	os.Exit(2)
}

// side is one trace under comparison: indexed random access when the
// stream is a finalized v2 file, streaming fallback otherwise (v1, or a
// run that died before writing its trailer).
type side struct {
	path string
	f    *os.File
	tf   *trace.TraceFile // nil when only streaming works
}

func open(path string) (*side, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s := &side{path: path, f: f}
	if tf, err := trace.OpenTraceFile(f, st.Size()); err == nil {
		s.tf = tf
	}
	return s, nil
}

func (s *side) close() { s.f.Close() }

// stream returns a reader over the side's full event body from the start.
func (s *side) stream() (*trace.BinaryReader, error) {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return trace.NewBinaryReader(s.f)
}

func (s *side) meta() (*trace.Meta, error) {
	if s.tf != nil {
		return s.tf.Meta(), nil
	}
	r, err := s.stream()
	if err != nil {
		return nil, err
	}
	return r.Meta(), nil
}

// compareMeta prints the scenario-fingerprint verdict and reports whether
// the fingerprints agree. Two traces of different scenarios can still be
// event-diffed, but they are not runs of the same experiment.
func compareMeta(a, b *side) bool {
	ma, err := a.meta()
	if err != nil {
		fatal(err)
	}
	mb, err := b.meta()
	if err != nil {
		fatal(err)
	}
	switch {
	case ma == nil && mb == nil:
		fmt.Println("meta: none (v1 or fingerprint-less traces)")
		return true
	case ma == nil || mb == nil:
		fmt.Println("meta: DIFFER (only one trace carries a scenario fingerprint)")
		fmt.Printf("  a: %s\n", metaLine(ma))
		fmt.Printf("  b: %s\n", metaLine(mb))
		return false
	case *ma == *mb:
		fmt.Printf("meta: identical — %s\n", metaLine(ma))
		return true
	default:
		fmt.Println("meta: DIFFER (not runs of the same scenario)")
		fmt.Printf("  a: %s\n", metaLine(ma))
		fmt.Printf("  b: %s\n", metaLine(mb))
		return false
	}
}

func metaLine(m *trace.Meta) string {
	if m == nil {
		return "(none)"
	}
	j, err := json.Marshal(m)
	if err != nil {
		return fmt.Sprintf("%+v", *m)
	}
	return string(j)
}

// compareEvents finds and reports the first divergent event. With two
// finalized v2 traces whose frames align, the per-frame cumulative
// digests locate the divergent frame by binary search and only that frame
// is decoded from each side; otherwise both bodies stream linearly.
func compareEvents(a, b *side) (bool, error) {
	if a.tf != nil && b.tf != nil {
		ia, ib := a.tf.Index(), b.tf.Index()
		if ia.TotalDigest == ib.TotalDigest && ia.TotalEvents == ib.TotalEvents {
			fmt.Printf("events: identical — %d events, digest %016x\n", ia.TotalEvents, ia.TotalDigest)
			return true, nil
		}
		if k, ok := divergentFrame(ia, ib); ok {
			return false, diffFrames(a, b, k)
		}
		// Frames misaligned (different spill strides): digests at frame
		// boundaries are not comparable, scan instead.
	}
	return diffStreams(a, b)
}

// divergentFrame returns the index of the first frame that can contain
// the divergence, given aligned frame boundaries: the first frame whose
// events-before digest disagrees, minus one. ok is false when the frame
// boundaries do not line up (the binary search would be meaningless).
func divergentFrame(ia, ib *trace.Index) (int, bool) {
	m := len(ia.Frames)
	if len(ib.Frames) < m {
		m = len(ib.Frames)
	}
	for i := 0; i < m; i++ {
		if ia.Frames[i].Ordinal != ib.Frames[i].Ordinal {
			return 0, false
		}
	}
	// DigestBefore[0] is the FNV basis on both sides, so the search
	// never selects -1.
	k := sort.Search(m, func(i int) bool {
		return ia.Frames[i].DigestBefore != ib.Frames[i].DigestBefore
	})
	if k == 0 {
		return 0, false
	}
	// Bodies agree before frame k-1 and disagree somewhere at or after
	// its start: the first divergent event is in frame k-1 or, if that
	// frame ties, a later one (only when k == m; diffFrames walks on).
	return k - 1, true
}

// diffFrames reports the first divergent event at or after frame k,
// decoding one aligned frame pair at a time.
func diffFrames(a, b *side, k int) error {
	na, nb := len(a.tf.Index().Frames), len(b.tf.Index().Frames)
	for ; k < na && k < nb; k++ {
		fa, err := frameEvents(a, k)
		if err != nil {
			return err
		}
		fb, err := frameEvents(b, k)
		if err != nil {
			return err
		}
		ord := a.tf.Index().Frames[k].Ordinal
		if done, err := reportFirstDiff(fa, fb, ord, k); done {
			return err
		}
	}
	reportLength(a.tf.Index().TotalEvents, b.tf.Index().TotalEvents)
	return nil
}

func frameEvents(s *side, k int) ([]trace.Event, error) {
	r, err := s.tf.OpenFrame(k)
	if err != nil {
		return nil, err
	}
	var out []trace.Event
	err = trace.Drain(r, func(e trace.Event) error {
		out = append(out, e)
		return nil
	})
	return out, err
}

// reportFirstDiff compares two aligned event runs starting at ordinal
// ord; on a mismatch it prints the divergence and reports done. A length
// mismatch within the pair is also final (frames are aligned, so the
// shorter side's trace ends inside this frame).
func reportFirstDiff(fa, fb []trace.Event, ord uint64, frame int) (bool, error) {
	n := len(fa)
	if len(fb) < n {
		n = len(fb)
	}
	for i := 0; i < n; i++ {
		if fa[i] != fb[i] {
			fmt.Printf("events: first divergence at event %d (frame %d)\n", ord+uint64(i), frame)
			fmt.Printf("  a: %s\n", fa[i])
			fmt.Printf("  b: %s\n", fb[i])
			return true, nil
		}
	}
	if len(fa) != len(fb) {
		reportLength(ord+uint64(len(fa)), ord+uint64(len(fb)))
		return true, nil
	}
	return false, nil
}

func reportLength(na, nb uint64) {
	if na == nb {
		// Aligned, equal-length, pairwise-equal events — yet the digests
		// disagreed. That means a body byte difference the decoder
		// normalizes away (it cannot happen with this writer).
		fmt.Printf("events: %d in both, no event-level divergence\n", na)
		return
	}
	fmt.Printf("events: lengths diverge — %d vs %d (traces agree up to the shorter)\n", na, nb)
}

// diffStreams is the linear fallback: decode both bodies in lockstep.
func diffStreams(a, b *side) (bool, error) {
	ra, err := a.stream()
	if err != nil {
		return false, err
	}
	rb, err := b.stream()
	if err != nil {
		return false, err
	}
	var ord uint64
	for {
		ea, errA := ra.Next()
		eb, errB := rb.Next()
		switch {
		case errA == io.EOF && errB == io.EOF:
			fmt.Printf("events: identical — %d events\n", ord)
			return true, nil
		case errA == io.EOF || errB == io.EOF:
			var na, nb uint64 = ord, ord
			if errA == io.EOF {
				nb++ // b still has at least this event
			} else {
				na++
			}
			reportLength(na, nb)
			return false, nil
		case errA != nil:
			return false, fmt.Errorf("%s: %w", a.path, errA)
		case errB != nil:
			return false, fmt.Errorf("%s: %w", b.path, errB)
		case ea != eb:
			fmt.Printf("events: first divergence at event %d\n", ord)
			fmt.Printf("  a: %s\n", ea)
			fmt.Printf("  b: %s\n", eb)
			return false, nil
		}
		ord++
	}
}
