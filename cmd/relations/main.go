package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/reduce"
)

func main() {
	seeds := flag.Int("seeds", 4, "number of random schedules per reduction")
	flag.Parse()

	fmt.Println("Figure 5 relation matrix — every arrow run and verified against the target class axioms")
	fmt.Println()
	failures := 0
	for _, rel := range reduce.All() {
		status := "✓"
		detail := ""
		for seed := int64(1); seed <= int64(*seeds); seed++ {
			if _, err := rel.Run(seed); err != nil {
				status = "✗"
				detail = err.Error()
				failures++
				break
			}
		}
		fmt.Printf("  %-4s %s  %-14s  [%s, %s] %s\n", rel.From, "→", rel.To, rel.Source, rel.Model, status)
		if detail != "" {
			fmt.Printf("       %s\n", detail)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d reduction(s) failed verification\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall reductions verified")
}
