// Command relations executes and verifies every failure-detector reduction
// of the paper's Figure 5 diagram (plus the composites), printing the
// machine-checked relation matrix.
//
//	go run ./cmd/relations [-seeds 4]
package main
