// Command experiments regenerates every experiment table (E1–E20): one
// per figure/theorem of the paper (E1–E13), the ablations E14–E17, the
// churn/heavy-tail sweeps E18/E19, and the churn-consensus table E20. Output is deterministic markdown;
// redirect it to refresh the file:
//
//	go run ./cmd/experiments > EXPERIMENTS_tables.md
//
// Campaigns shard: -shards N splits every selected table's scenario list
// into N deterministic batches. With -shard k only that batch runs and
// its checkpoint is written to -checkpoint-dir (multi-process fan-out:
// one process per shard, any machine order); a final -resume run verifies
// the existing checkpoints, re-runs exactly the missing or damaged ones,
// and merges — byte-identical to a single-process run by the campaign
// determinism contract:
//
//	go run ./cmd/experiments -only E18 -shards 4 -shard 0 -checkpoint-dir ckpt   # × 4, in parallel
//	go run ./cmd/experiments -only E18 -shards 4 -checkpoint-dir ckpt -resume    # verify + merge
package main
