package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/sweep"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E6,E9); default all")
	workers := flag.Int("workers", 0, "scenario parallelism (0 = all cores, 1 = serial); output is identical either way")
	campaignCfg := cliutil.CampaignFlags(flag.CommandLine)
	flag.Parse()
	sweep.SetDefaultWorkers(*workers)

	cfg, err := campaignCfg()
	if err != nil {
		log.Fatal(err)
	}
	experiments.SetCampaign(cfg)

	var ids []string
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	tables, err := experiments.Tables(ids)
	if err != nil {
		log.Fatal(err)
	}
	for _, table := range tables {
		if table.Partial {
			fmt.Fprintf(os.Stderr, "%s: shard %d/%d checkpointed in %s (no table output; merge with -resume)\n",
				table.ID, cfg.Shard, cfg.Shards, cfg.Dir)
			continue
		}
		fmt.Println(table.Markdown())
	}
}
