// Command experiments regenerates every experiment table (E1–E13) that
// EXPERIMENTS.md records: one per figure/theorem of the paper. Output is
// deterministic markdown; redirect it to refresh the file:
//
//	go run ./cmd/experiments > EXPERIMENTS_tables.md
package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E6,E9); default all")
	workers := flag.Int("workers", 0, "scenario parallelism (0 = all cores, 1 = serial); output is identical either way")
	flag.Parse()
	sweep.SetDefaultWorkers(*workers)

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	for _, table := range experiments.All() {
		if len(want) > 0 && !want[table.ID] {
			continue
		}
		fmt.Println(table.Markdown())
	}
}
