// Command experiments regenerates every experiment table (E1–E13) that
// EXPERIMENTS.md records: one per figure/theorem of the paper. Output is
// deterministic markdown; redirect it to refresh the file:
//
//	go run ./cmd/experiments > EXPERIMENTS_tables.md
//
// Campaigns shard: -shards N splits every selected table's scenario list
// into N deterministic batches. With -shard k only that batch runs and
// its checkpoint is written to -checkpoint-dir (multi-process fan-out:
// one process per shard, any machine order); a final -resume run verifies
// the existing checkpoints, re-runs exactly the missing or damaged ones,
// and merges — byte-identical to a single-process run by the campaign
// determinism contract:
//
//	go run ./cmd/experiments -only E18 -shards 4 -shard 0 -checkpoint-dir ckpt   # × 4, in parallel
//	go run ./cmd/experiments -only E18 -shards 4 -checkpoint-dir ckpt -resume    # verify + merge
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/sweep"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E6,E9); default all")
	workers := flag.Int("workers", 0, "scenario parallelism (0 = all cores, 1 = serial); output is identical either way")
	campaignCfg := cliutil.CampaignFlags(flag.CommandLine)
	flag.Parse()
	sweep.SetDefaultWorkers(*workers)

	cfg, err := campaignCfg()
	if err != nil {
		log.Fatal(err)
	}
	experiments.SetCampaign(cfg)

	var ids []string
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	tables, err := experiments.Tables(ids)
	if err != nil {
		log.Fatal(err)
	}
	for _, table := range tables {
		if table.Partial {
			fmt.Fprintf(os.Stderr, "%s: shard %d/%d checkpointed in %s (no table output; merge with -resume)\n",
				table.ID, cfg.Shard, cfg.Shards, cfg.Dir)
			continue
		}
		fmt.Println(table.Markdown())
	}
}
