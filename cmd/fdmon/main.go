package main

import (
	"flag"
	"fmt"
	"log"

	hds "repro"
	"repro/internal/cliutil"
)

func main() {
	detector := flag.String("detector", "ohp", "ohp (Figure 6, HPS) or hsigma (Figure 7, HSS)")
	n := flag.Int("n", 6, "number of processes")
	l := flag.Int("l", 3, "number of distinct identifiers (1 = anonymous, n = unique)")
	gst := flag.Int64("gst", 50, "global stabilization time (ohp)")
	delta := flag.Int64("delta", 3, "post-GST latency bound δ (ohp)")
	seed := flag.Int64("seed", 1, "random seed")
	horizon := flag.Int64("horizon", 6000, "virtual time horizon (ohp)")
	steps := flag.Int("steps", 12, "synchronous steps (hsigma)")
	crashes := flag.String("crashes", "1:30", "crash schedule pid:time[,pid:time...]; empty for none")
	flag.Parse()

	sched, err := cliutil.ParseCrashes(*crashes)
	if err != nil {
		log.Fatal(err)
	}
	ids := hds.BalancedIDs(*n, *l)
	fmt.Printf("identity assignment (n=%d, ℓ=%d): %v\n", *n, *l, ids)

	switch *detector {
	case "ohp":
		res, err := hds.RunOHP(hds.OHPExperiment{
			IDs: ids, Crashes: sched, GST: *gst, Delta: *delta, Seed: *seed, Horizon: *horizon,
		})
		if err != nil {
			log.Fatalf("class check failed: %v", err)
		}
		fmt.Println("◇HP̄ and HΩ verified ✔ (Theorem 5, Corollary 2)")
		fmt.Printf("  h_trusted stabilized at:  t=%d\n", res.TrustedStabilization)
		fmt.Printf("  (h_leader, mult) stable:  t=%d → %s\n", res.LeaderStabilization, res.Leader)
		fmt.Printf("  adapted timeouts:         %v\n", res.FinalTimeouts)
		fmt.Printf("  traffic: %d POLLING, %d P_REPLY broadcasts over %d vt\n",
			res.Stats.ByTag["POLLING"], res.Stats.ByTag["P_REPLY"], *horizon)
	case "hsigma":
		crashSteps := make(map[hds.PID]hds.CrashStep, len(sched))
		for p, at := range sched {
			crashSteps[p] = hds.CrashStep{Step: int(at), DeliverProb: 0.5}
		}
		res, err := hds.RunHSigma(hds.HSigmaExperiment{
			IDs: ids, CrashSteps: crashSteps, Steps: *steps, Seed: *seed,
		})
		if err != nil {
			log.Fatalf("class check failed: %v", err)
		}
		fmt.Println("HΣ verified ✔ (Theorem 6: validity, monotonicity, liveness, safety)")
		fmt.Printf("  outputs stabilized at step %d of %d\n", res.StabilizationStep, *steps)
		fmt.Printf("  final |h_quora| per survivor: %v\n", res.QuoraPerProcess)
		fmt.Printf("  traffic: %d IDENT broadcasts\n", res.Stats.ByTag["IDENT"])
	default:
		log.Fatalf("unknown detector %q (want ohp or hsigma)", *detector)
	}
}
