// Command fdmon runs the paper's failure detector implementations
// standalone and reports their convergence:
//
//	go run ./cmd/fdmon -detector ohp    # Figure 6: ◇HP̄+HΩ in HPS
//	go run ./cmd/fdmon -detector hsigma # Figure 7: HΣ in HSS
//
// Flags select the population (n, l), the timing model (gst, delta) and a
// crash schedule; the run is verified against the class axioms before any
// numbers are printed.
package main
