package hds

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRunChurnOHPReconverges(t *testing.T) {
	res, err := RunChurnOHP(ChurnOHPExperiment{
		IDs:   BalancedIDs(12, 4),
		Churn: ChurnSpec{Fraction: 0.25, Cycles: 2, Start: 30, Down: 40, Up: 60, Stagger: 7},
		Seed:  1, Horizon: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EventuallyUp != 12 {
		t.Errorf("EventuallyUp = %d, want 12 (every churner recovers)", res.EventuallyUp)
	}
	if res.Correct >= 12 {
		t.Errorf("Correct = %d, want < 12 (churners are not strictly correct)", res.Correct)
	}
	if res.Recoveries != 6 {
		t.Errorf("Recoveries = %d, want 6 (3 churners × 2 cycles)", res.Recoveries)
	}
	if res.TrustedRestab < res.LastChange {
		t.Errorf("re-stabilization %d before the last fault-pattern change %d", res.TrustedRestab, res.LastChange)
	}
	if res.Leader.ID == "" || res.Leader.Multiplicity == 0 {
		t.Errorf("no stabilized leader: %v", res.Leader)
	}
}

func TestRunChurnOHPFinalDown(t *testing.T) {
	// Churners that never come back degrade churn to crash-stop for them:
	// the detector must settle on the strictly smaller eventually-up set.
	res, err := RunChurnOHP(ChurnOHPExperiment{
		IDs:   BalancedIDs(8, 4),
		Churn: ChurnSpec{Fraction: 0.25, Cycles: 2, Start: 30, Down: 30, Up: 40, FinalDown: true},
		Seed:  2, Horizon: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EventuallyUp != 6 || res.Correct != 6 {
		t.Errorf("EventuallyUp/Correct = %d/%d, want 6/6 (final-down churners leave for good)", res.EventuallyUp, res.Correct)
	}
	if res.Recoveries != 2 {
		t.Errorf("Recoveries = %d, want 2 (first cycle only)", res.Recoveries)
	}
}

func TestRunHeartbeatChurnTruthConsistency(t *testing.T) {
	res, err := RunHeartbeatChurn(HeartbeatExperiment{
		IDs:   BalancedIDs(120, 12),
		Churn: ChurnSpec{Fraction: 0.25, Cycles: 2, Start: 10, Down: 20, Up: 25, FinalDown: true},
		Seed:  3, Horizon: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != sim.StopHorizon {
		t.Errorf("Stopped = %v, want horizon", res.Stopped)
	}
	if res.EventuallyUp != 90 || res.Correct != 90 {
		t.Errorf("EventuallyUp/Correct = %d/%d, want 90/90", res.EventuallyUp, res.Correct)
	}
	if res.Recoveries == 0 || res.Stats.TimerDrops == 0 {
		t.Errorf("scenario exercised no recoveries (%d) or timer drops (%d)", res.Recoveries, res.Stats.TimerDrops)
	}
}

// TestGuardSurfacedInDrivers pins the MaxEvents satellite at driver level:
// a truncated run must be reported, never silently read as complete.
func TestGuardSurfacedInDrivers(t *testing.T) {
	res, err := RunHeartbeatChurn(HeartbeatExperiment{
		IDs:   BalancedIDs(20, 4),
		Churn: ChurnSpec{Fraction: 0.2, Cycles: 1},
		Seed:  4, Horizon: 500, MaxEvents: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != sim.StopMaxEvents {
		t.Fatalf("Stopped = %v, want max-events", res.Stopped)
	}
	// The verifying runners turn the same condition into an error.
	_, err = RunChurnOHP(ChurnOHPExperiment{
		IDs:   BalancedIDs(12, 4),
		Churn: ChurnSpec{Fraction: 0.25, Cycles: 1},
		Seed:  5, Horizon: 3000, MaxEvents: 100,
	})
	if err == nil || !strings.Contains(err.Error(), "MaxEvents") {
		t.Fatalf("RunChurnOHP on a guard-tripped run: err = %v, want MaxEvents error", err)
	}
}
