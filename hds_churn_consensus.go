package hds

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/fd/ohp"
	"repro/internal/fd/oracle"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ChurnFig8Experiment describes one run of the Figure 8 consensus
// (HAS[t < n/2, HΩ]) under crash-recovery churn: churners cycle down and
// up per the schedule, recovered processes rejoin the protocol through the
// (REJOIN, r) round-resync exchange, and the consensus properties are
// verified in their crash-recovery restatement (Termination over the
// eventually-up processes, decisions surviving outages).
type ChurnFig8Experiment struct {
	IDs Assignment
	// T is the crash budget: every process that ever crashes — churner or
	// permanent — spends it, matching the paper's "at most t faulty" under
	// the strict "correct = never crashes" reading. T < n/2 guarantees the
	// never-crashed majority completes rounds on its own, so rejoiners can
	// always catch up (at worst through the DECIDE relay).
	T     int
	Churn ChurnSpec
	// Crashes adds permanent crash-stop crashes on top of the churn
	// schedule. A process may appear in at most one of the two mechanisms;
	// overlapping configurations are rejected.
	Crashes map[PID]Time
	// Net defaults to the engine's Async{}; use an eventually timely model
	// with MessagePassingDetectors.
	Net sim.Model
	// Detectors defaults to OracleDetectors (whose stable views are stated
	// over the eventually-up set, so they re-converge after churn); with
	// MessagePassingDetectors the paper's Figure 6 stack — itself
	// recovery-capable — runs underneath.
	Detectors DetectorSource
	// Stabilize is the oracle stabilization time (OracleDetectors only).
	// Zero defaults to 50 past the churn schedule's last event, so the
	// adversary stays active through the whole churn phase.
	Stabilize Time
	// Adversary shapes pre-stabilization oracle output (OracleDetectors).
	Adversary oracle.Adversary
	// Proposals defaults to "v0".."v{n-1}".
	Proposals []Value
	Seed      int64
	// Horizon caps virtual time (default 1e6). It must exceed the churn
	// schedule's last event — a horizon that cuts the schedule short would
	// silently verify a different fault pattern — and the runner enforces
	// that instead of trusting the caller.
	Horizon Time
	// MaxEvents overrides the engine's runaway guard (0 = engine default).
	MaxEvents int
	// Trace, when non-nil, replaces the default stats-only recorder (see
	// Fig8Experiment.Trace).
	Trace *trace.Recorder
}

// ChurnFig9Experiment is the Figure 9 (HAS[HΩ, HΣ]) counterpart of
// ChurnFig8Experiment. Fig. 9 needs neither n nor t: quorums come from the
// HΣ detector, whose stable output under churn is built over the
// eventually-up set, so any churn schedule is admissible — including
// final-down churners that shrink the deciding population.
type ChurnFig9Experiment struct {
	IDs   Assignment
	Churn ChurnSpec
	// Crashes adds permanent crash-stop crashes; overlap with the churn
	// schedule is rejected (see ChurnFig8Experiment.Crashes).
	Crashes map[PID]Time
	Net     sim.Model
	// AnonymousBaseline switches to the AΩ variant without the Leaders'
	// Coordination Phase (§5.3 closing remark).
	AnonymousBaseline bool
	// Stabilize defaults to 50 past the churn schedule's last event.
	Stabilize Time
	Adversary oracle.Adversary
	Proposals []Value
	Seed      int64
	// Horizon caps virtual time (default 1e6); must exceed the schedule's
	// last event (enforced).
	Horizon   Time
	MaxEvents int
	Trace     *trace.Recorder
}

// ChurnConsensusResult reports a verified churn-consensus run.
type ChurnConsensusResult struct {
	// Report is the checker-verified consensus outcome (Termination
	// quantified over the eventually-up processes).
	Report Report
	// LastChange is the final fault-pattern change (last crash or
	// recovery) — the earliest instant the run's tail is churn-free.
	LastChange Time
	// DecideAfterChurn is how long after the fault pattern settled the last
	// eventually-up process decided (0 when consensus finished before the
	// churn did): the decision latency attributable to post-churn
	// re-convergence and rejoin.
	DecideAfterChurn Time
	// EventuallyUp and Correct are |EventuallyUp| and |Correct|.
	EventuallyUp, Correct int
	// Recoveries counts executed recover events.
	Recoveries int
	// Stopped is why the run ended.
	Stopped sim.StopReason
	// Stats aggregates message costs.
	Stats Stats
}

// RunChurnFig8 executes Figure 8 under the churn schedule with the rejoin
// protocol live, cross-checks the engine's incremental fault bookkeeping
// against the schedule-derived ground truth, verifies decision stability
// across every outage, and checks the crash-recovery consensus properties.
func RunChurnFig8(e ChurnFig8Experiment) (ChurnConsensusResult, error) {
	n := e.IDs.N()
	if err := validateExperiment(e.IDs, e.Crashes, e.Proposals); err != nil {
		return ChurnConsensusResult{}, err
	}
	if e.T < 0 || 2*e.T >= n {
		return ChurnConsensusResult{}, fmt.Errorf("hds: Fig8 requires 0 <= t < n/2, got t=%d n=%d", e.T, n)
	}
	if e.Horizon == 0 {
		e.Horizon = 1_000_000
	}
	schedule, truth, err := churnFaultPattern(e.IDs, e.Churn, e.Crashes, e.Horizon)
	if err != nil {
		return ChurnConsensusResult{}, err
	}
	if crashed := len(truth.CrashTimes); crashed > e.T {
		return ChurnConsensusResult{}, fmt.Errorf("hds: churn schedule plus crashes fault %d processes, exceeding the t=%d budget (every crash spends it, recovered or not)", crashed, e.T)
	}
	proposals := e.Proposals
	if proposals == nil {
		proposals = defaultProposals(n)
	}
	stabilize := e.Stabilize
	if stabilize == 0 {
		stabilize = truth.LastChange() + 50
	}

	rec := traceRecorder(e.Trace)
	eng := sim.New(sim.Config{IDs: e.IDs, Net: e.Net, Seed: e.Seed, KnownN: true, Recorder: rec, MaxEvents: e.MaxEvents})
	world := oracle.NewWorld(truth, stabilize)
	insts := make([]*core.Fig8, n)
	for i := 0; i < n; i++ {
		node := sim.NewNode()
		var det fd.HOmega
		switch e.Detectors {
		case MessagePassingDetectors:
			d := ohp.New()
			node.Add("ohp", d)
			det = d
		default:
			d := oracle.NewHOmega(world, e.Adversary)
			node.Add("homega", d)
			det = d
		}
		insts[i] = core.NewFig8(det, e.T, proposals[i])
		node.Add("consensus", insts[i])
		eng.AddProcess(node)
	}
	outcome := func(p sim.PID) core.Outcome { return insts[p].Decided() }
	invariant := func(p sim.PID) error { return insts[p].InvariantErr() }
	return runChurnConsensus(eng, rec, truth, schedule, proposals, e.Horizon, outcome, invariant)
}

// RunChurnFig9 is RunChurnFig8 for Figure 9 (or its anonymous baseline):
// oracle-driven detectors, any number of faults, HΣ quorums built over the
// eventually-up set.
func RunChurnFig9(e ChurnFig9Experiment) (ChurnConsensusResult, error) {
	n := e.IDs.N()
	if err := validateExperiment(e.IDs, e.Crashes, e.Proposals); err != nil {
		return ChurnConsensusResult{}, err
	}
	if e.Horizon == 0 {
		e.Horizon = 1_000_000
	}
	schedule, truth, err := churnFaultPattern(e.IDs, e.Churn, e.Crashes, e.Horizon)
	if err != nil {
		return ChurnConsensusResult{}, err
	}
	if len(truth.EventuallyUp()) == 0 {
		return ChurnConsensusResult{}, fmt.Errorf("hds: no process is eventually up — nothing can decide")
	}
	proposals := e.Proposals
	if proposals == nil {
		proposals = defaultProposals(n)
	}
	stabilize := e.Stabilize
	if stabilize == 0 {
		stabilize = truth.LastChange() + 50
	}

	rec := traceRecorder(e.Trace)
	eng := sim.New(sim.Config{IDs: e.IDs, Net: e.Net, Seed: e.Seed, Recorder: rec, MaxEvents: e.MaxEvents})
	world := oracle.NewWorld(truth, stabilize)
	insts := make([]*core.Fig9, n)
	for i := 0; i < n; i++ {
		hs := oracle.NewHSigma(world)
		node := sim.NewNode().Add("hsigma", hs)
		if e.AnonymousBaseline {
			ao := oracle.NewAOmega(world, e.Adversary)
			node.Add("aomega", ao)
			insts[i] = core.NewFig9Anonymous(ao, hs, proposals[i])
		} else {
			ho := oracle.NewHOmega(world, e.Adversary)
			node.Add("homega", ho)
			insts[i] = core.NewFig9(ho, hs, proposals[i])
		}
		node.Add("consensus", insts[i])
		eng.AddProcess(node)
	}
	outcome := func(p sim.PID) core.Outcome { return insts[p].Decided() }
	invariant := func(p sim.PID) error { return insts[p].InvariantErr() }
	return runChurnConsensus(eng, rec, truth, schedule, proposals, e.Horizon, outcome, invariant)
}

// runChurnConsensus is the shared tail of the churn-consensus runners:
// apply the schedule, monitor decision stability, run until every
// eventually-up process decided (or the horizon), cross-check engine
// bookkeeping against the truth, and verify the restated properties.
func runChurnConsensus(eng *sim.Engine, rec *trace.Recorder, truth *fd.GroundTruth,
	schedule []ChurnEvent, proposals []Value, horizon Time,
	outcome func(sim.PID) core.Outcome, invariant func(sim.PID) error) (ChurnConsensusResult, error) {
	eng.ApplyChurn(schedule)
	mon := check.NewDecisionMonitor()
	eng.AfterEvent(func(_ Time, p sim.PID) {
		if p >= 0 {
			mon.Observe(p, outcome(p))
		}
	})

	eng.RunUntil(horizon, func() bool {
		for _, p := range truth.EventuallyUp() {
			if !outcome(p).Decided {
				return false
			}
		}
		return true
	})
	if err := guardErr(eng); err != nil {
		return ChurnConsensusResult{}, err
	}
	if err := checkTruthConsistency(eng, truth); err != nil {
		return ChurnConsensusResult{}, err
	}
	if err := mon.Err(); err != nil {
		return ChurnConsensusResult{}, err
	}

	n := len(proposals)
	outcomes := make([]core.Outcome, n)
	for p := 0; p < n; p++ {
		outcomes[p] = outcome(sim.PID(p))
		if err := invariant(sim.PID(p)); err != nil {
			return ChurnConsensusResult{}, fmt.Errorf("hds: internal invariant: %w", err)
		}
	}
	rep, err := check.ConsensusChurn(truth, proposals, outcomes)
	if err != nil {
		return ChurnConsensusResult{}, err
	}
	res := ChurnConsensusResult{
		Report:       rep,
		LastChange:   truth.LastChange(),
		EventuallyUp: len(truth.EventuallyUp()),
		Correct:      len(truth.Correct()),
		Recoveries:   eng.Recoveries(),
		Stopped:      eng.Stopped(),
		Stats:        rec.Stats(),
	}
	if rep.LastDecision > res.LastChange {
		res.DecideAfterChurn = rep.LastDecision - res.LastChange
	}
	return res, nil
}

// FaultPattern expands a churn spec plus permanent crashes into the
// combined schedule and its ground truth, with the same validation the
// churn runners apply (events within the horizon, no process driven by
// both mechanisms). Offline verification uses it to rebuild the exact
// fault pattern a recorded run verified against from the scenario
// fingerprint alone.
func FaultPattern(ids Assignment, churn ChurnSpec, crashes map[PID]Time, horizon Time) ([]ChurnEvent, *fd.GroundTruth, error) {
	return churnFaultPattern(ids, churn, crashes, horizon)
}

// churnFaultPattern expands the churn spec, folds permanent crashes into
// the same schedule, validates the combination (events within the horizon,
// no process driven by both mechanisms), and derives the ground truth.
func churnFaultPattern(ids Assignment, churn ChurnSpec, crashes map[PID]Time, horizon Time) ([]ChurnEvent, *fd.GroundTruth, error) {
	schedule := churn.Events(ids.N())
	if len(crashes) > 0 {
		churners := make(map[PID]bool, len(schedule))
		for _, ev := range schedule {
			churners[ev.P] = true
		}
		overlap := make([]int, 0, len(crashes))
		for p := range crashes {
			if churners[p] {
				overlap = append(overlap, int(p))
			}
		}
		if len(overlap) > 0 {
			sort.Ints(overlap)
			return nil, nil, fmt.Errorf("hds: process(es) %v appear in both the churn schedule and the Crashes map — use one crash mechanism per process (the engine would interleave both into a schedule nobody asked for)", overlap)
		}
		// Append in ascending PID order: the combined schedule is applied
		// to the engine in slice order, and same-time events are
		// tie-broken by registration sequence — map order must not leak.
		pids := make([]PID, 0, len(crashes))
		for p := range crashes {
			pids = append(pids, p)
		}
		slices.Sort(pids)
		for _, p := range pids {
			schedule = append(schedule, ChurnEvent{P: p, At: crashes[p]})
		}
	}
	// Validate the horizon against the *combined* schedule: a permanent
	// crash past the horizon would be silently truncated exactly like a
	// churn event, and the ground truth (which assumes every scheduled
	// event fires) would then verify a fault pattern the run never had.
	if err := validateChurnHorizon(schedule, horizon); err != nil {
		return nil, nil, err
	}
	return schedule, fd.NewGroundTruthFromChurn(ids, schedule), nil
}

// validateChurnHorizon rejects schedules whose last event is not strictly
// before the horizon: the run would truncate the fault pattern and verify
// a scenario nobody specified.
func validateChurnHorizon(schedule []ChurnEvent, horizon Time) error {
	var last Time
	for _, ev := range schedule {
		if ev.At > last {
			last = ev.At
		}
	}
	if len(schedule) > 0 && last >= horizon {
		return fmt.Errorf("hds: the fault schedule's last event at t=%d is not before the horizon %d — the run would truncate the fault pattern", last, horizon)
	}
	return nil
}
