// Benchmarks: one per experiment in DESIGN.md's index (E1–E13), i.e. one
// per figure/theorem of the paper. Each iteration executes a full verified
// scenario; custom metrics surface the quantities the corresponding
// EXPERIMENTS.md table reports (virtual stabilization times, rounds,
// broadcast counts), so `go test -bench=. -benchmem` regenerates the
// shapes end to end.
package hds_test

import (
	"testing"

	hds "repro"
	"repro/internal/experiments"
	"repro/internal/fd/oracle"
	"repro/internal/reduce"
)

// benchTable runs one experiment table builder per iteration and fails the
// bench if any row reports a verification failure.
func benchTable(b *testing.B, build func() (experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := build()
		if err != nil {
			b.Fatalf("%s: %v", t.ID, err)
		}
		for _, row := range t.Rows {
			for _, cell := range row {
				if len(cell) > 0 && cell[0] == 0xE2 && cell[1] == 0x9C && cell[2] == 0x97 { // "✗"
					b.Fatalf("%s: %v", t.ID, row)
				}
			}
		}
	}
}

func BenchmarkE1_Fig1SigmaToHSigmaKnown(b *testing.B) {
	benchTable(b, experiments.E1SigmaToHSigmaKnown)
}

func BenchmarkE2_Fig2SigmaToHSigmaUnknown(b *testing.B) {
	benchTable(b, experiments.E2SigmaToHSigmaUnknown)
}

func BenchmarkE3_Fig3AliveList(b *testing.B) {
	benchTable(b, experiments.E3AliveList)
}

func BenchmarkE4_Fig4HSigmaToSigma(b *testing.B) {
	benchTable(b, experiments.E4HSigmaToSigma)
}

func BenchmarkE5_RelationMatrix(b *testing.B) {
	rels := reduce.All()
	for i := 0; i < b.N; i++ {
		for _, rel := range rels {
			if _, err := rel.Run(int64(i%4) + 1); err != nil {
				b.Fatalf("%s→%s: %v", rel.From, rel.To, err)
			}
		}
	}
}

func BenchmarkE6_Fig6DiamondHPbar(b *testing.B) {
	var stab, traffic int64
	for i := 0; i < b.N; i++ {
		res, err := hds.RunOHP(hds.OHPExperiment{
			IDs:     hds.BalancedIDs(6, 3),
			Crashes: map[hds.PID]hds.Time{1: 30},
			GST:     50, Delta: 3,
			Seed:    int64(i),
			Horizon: 6000,
		})
		if err != nil {
			b.Fatal(err)
		}
		stab += res.TrustedStabilization
		traffic += int64(res.Stats.Broadcasts)
	}
	b.ReportMetric(float64(stab)/float64(b.N), "vt-stabilize/op")
	b.ReportMetric(float64(traffic)/float64(b.N), "broadcasts/op")
}

func BenchmarkE7_HOmegaFromOHP(b *testing.B) {
	var stab int64
	for i := 0; i < b.N; i++ {
		res, err := hds.RunOHP(hds.OHPExperiment{
			IDs:     hds.BalancedIDs(6, 3),
			Crashes: map[hds.PID]hds.Time{0: 40},
			GST:     50, Delta: 3,
			Seed:    int64(i),
			Horizon: 6000,
		})
		if err != nil {
			b.Fatal(err)
		}
		stab += res.LeaderStabilization
	}
	b.ReportMetric(float64(stab)/float64(b.N), "vt-leader-stabilize/op")
}

func BenchmarkE8_Fig7HSigma(b *testing.B) {
	var stab int64
	for i := 0; i < b.N; i++ {
		res, err := hds.RunHSigma(hds.HSigmaExperiment{
			IDs:        hds.BalancedIDs(6, 3),
			CrashSteps: map[hds.PID]hds.CrashStep{1: {Step: 3, DeliverProb: 0.5}},
			Steps:      12,
			Seed:       int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		stab += res.StabilizationStep
	}
	b.ReportMetric(float64(stab)/float64(b.N), "steps-stabilize/op")
}

func BenchmarkE9_Fig8Consensus(b *testing.B) {
	var rounds, msgs int64
	for i := 0; i < b.N; i++ {
		rep, stats, err := hds.RunFig8(hds.Fig8Experiment{
			IDs:       hds.BalancedIDs(5, 2),
			T:         2,
			Crashes:   map[hds.PID]hds.Time{1: 30},
			Stabilize: 80,
			Adversary: oracle.AdversaryRotate,
			Seed:      int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		rounds += int64(rep.MaxRound)
		msgs += int64(stats.Broadcasts)
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
	b.ReportMetric(float64(msgs)/float64(b.N), "broadcasts/op")
}

func BenchmarkE10_Fig9Consensus(b *testing.B) {
	var rounds, msgs int64
	for i := 0; i < b.N; i++ {
		rep, stats, err := hds.RunFig9(hds.Fig9Experiment{
			IDs:       hds.BalancedIDs(6, 3),
			Crashes:   map[hds.PID]hds.Time{0: 20, 1: 35, 2: 50, 3: 65}, // t ≥ n/2
			Stabilize: 140,
			Adversary: oracle.AdversaryRotate,
			Seed:      int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		rounds += int64(rep.MaxRound)
		msgs += int64(stats.Broadcasts)
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
	b.ReportMetric(float64(msgs)/float64(b.N), "broadcasts/op")
}

func BenchmarkE11_HomonymyExtremes(b *testing.B) {
	benchTable(b, experiments.E11HomonymyExtremes)
}

func BenchmarkE12_EndToEndHPS(b *testing.B) {
	var decided int64
	for i := 0; i < b.N; i++ {
		rep, _, err := hds.RunFig8(hds.Fig8Experiment{
			IDs:       hds.BalancedIDs(5, 2),
			T:         2,
			Crashes:   map[hds.PID]hds.Time{3: 40},
			Net:       hds.PartialSync{GST: 100, Delta: 3, PreMax: 120},
			Detectors: hds.MessagePassingDetectors,
			Seed:      int64(i),
			Horizon:   3_000_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		decided += rep.LastDecision
	}
	b.ReportMetric(float64(decided)/float64(b.N), "vt-decide/op")
}

func BenchmarkE13_APReductions(b *testing.B) {
	benchTable(b, experiments.E13APReductions)
}

// BenchmarkSubstrate_* profile the building blocks so regressions in the
// simulator itself are visible separately from algorithm behaviour.

func BenchmarkSubstrate_SimBroadcastStorm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := hds.RunOHP(hds.OHPExperiment{
			IDs: hds.BalancedIDs(12, 4),
			GST: 20, Delta: 2,
			Seed:    int64(i),
			Horizon: 1500,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

func BenchmarkSubstrate_Fig8NoFailures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := hds.RunFig8(hds.Fig8Experiment{
			IDs: hds.BalancedIDs(7, 3), T: 3, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE14_CoordinationAblation(b *testing.B) {
	benchTable(b, experiments.E14CoordinationAblation)
}

func BenchmarkE15_LeaderGroupSize(b *testing.B) {
	benchTable(b, experiments.E15LeaderGroupSize)
}

func BenchmarkE16_TimeoutAdaptation(b *testing.B) {
	// E16 contains an intentionally failing ablated variant; validate only
	// that the adaptive rows hold the class.
	for i := 0; i < b.N; i++ {
		t, err := experiments.E16TimeoutAdaptation()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range t.Rows {
			if row[0] == "adaptive (paper)" && row[2] != "yes" {
				b.Fatalf("adaptive variant failed: %v", row)
			}
		}
	}
}

func BenchmarkE17_PhaseMessageBreakdown(b *testing.B) {
	benchTable(b, experiments.E17PhaseMessageBreakdown)
}

func BenchmarkE18_ChurnSweep(b *testing.B) {
	benchTable(b, experiments.E18ChurnSweep)
}

func BenchmarkE19_HeavyTailDelays(b *testing.B) {
	benchTable(b, experiments.E19HeavyTailDelays)
}

func BenchmarkE20_ChurnConsensus(b *testing.B) {
	benchTable(b, experiments.E20ChurnConsensus)
}

// BenchmarkChurnConsensusFig8 measures one verified Fig. 8 churn run —
// crash, recovery, rejoin exchange, decision — in isolation from table
// rendering, so the rejoin path's cost is tracked per commit.
func BenchmarkChurnConsensusFig8(b *testing.B) {
	var after int64
	for i := 0; i < b.N; i++ {
		res, err := hds.RunChurnFig8(hds.ChurnFig8Experiment{
			IDs: hds.BalancedIDs(5, 2), T: 2,
			Churn: hds.ChurnSpec{Fraction: 0.3, Cycles: 1, Start: 2, Down: 60},
			Net:   hds.Async{MaxDelay: 8}, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		after += res.DecideAfterChurn
	}
	b.ReportMetric(float64(after)/float64(b.N), "vt-decide-after-churn/op")
}

// BenchmarkChurnEngine1000 measures the raw engine on the n=1000
// crash-recovery heartbeat scenario — the large-n hot path (deliver fan-out
// plus churn bookkeeping) in isolation, without table rendering.
func BenchmarkChurnEngine1000(b *testing.B) {
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := hds.RunHeartbeatChurn(hds.HeartbeatExperiment{
			IDs:   hds.BalancedIDs(1000, 50),
			Churn: hds.ChurnSpec{Fraction: 0.2, Cycles: 1, Start: 5, Down: 12},
			Seed:  int64(i), Period: 15, Horizon: 40, MaxEvents: 20_000_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		events += int64(res.Processed)
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// benchChurnEngineAt runs the population-scaling heartbeat scenario (a
// fixed beater pool, so event volume is Θ(beaters·n) and n is the
// stressed dimension) with streaming verification on — the E21 workload
// as a per-commit benchmark. The max-queue metric is the lazy fan-out
// witness: it must stay in the thousands at every n.
func benchChurnEngineAt(b *testing.B, n, l, beaters int, frac float64) {
	b.Helper()
	var events, maxQ int64
	for i := 0; i < b.N; i++ {
		res, err := hds.RunHeartbeatChurn(hds.HeartbeatExperiment{
			IDs:   hds.BalancedIDs(n, l),
			Churn: hds.ChurnSpec{Fraction: frac, Cycles: 1, Start: 5, Down: 12},
			Seed:  int64(i), Period: 15, Horizon: 45,
			Beaters: beaters, MaxEvents: 100_000_000, StreamVerify: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		events += int64(res.Processed)
		maxQ += int64(res.MaxQueue)
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	b.ReportMetric(float64(maxQ)/float64(b.N), "max-queue/op")
}

func BenchmarkChurnEngine10k(b *testing.B) {
	benchChurnEngineAt(b, 10_000, 100, 100, 0.1)
}

func BenchmarkChurnEngine50k(b *testing.B) {
	benchChurnEngineAt(b, 50_000, 200, 100, 0.05)
}
