package hds

import (
	"fmt"

	"repro/internal/fd"
	"repro/internal/fd/ohp"
	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ChurnOHPExperiment runs the Figure 6 detector under crash-recovery
// churn: a fraction of the processes cycle down and up, and the detector
// must re-converge to I(EventuallyUp) — the crash-recovery restatement of
// the ◇HP̄/HΩ class properties (their crash-stop forms are the special
// case with no recoveries).
type ChurnOHPExperiment struct {
	IDs   Assignment
	Churn ChurnSpec
	// Net defaults to PartialSync{Delta: 3} (timely from the start, so the
	// measured re-stabilization is attributable to churn, not to GST).
	Net  sim.Model
	Seed int64
	// Horizon caps virtual time (default 5000). It must comfortably exceed
	// the churn schedule's last event.
	Horizon Time
	// MaxEvents overrides the engine's runaway guard (0 = engine default).
	MaxEvents int
	// Trace, when non-nil, replaces the default stats-only recorder (see
	// OHPExperiment.Trace).
	Trace *trace.Recorder
}

// ChurnOHPResult reports the verified churn run.
type ChurnOHPResult struct {
	// LastChange is the final fault-pattern change (last crash or
	// recovery) — the earliest instant re-stabilization could begin.
	LastChange Time
	// TrustedRestab is when the last eventually-up process's h_trusted
	// settled on I(EventuallyUp).
	TrustedRestab Time
	// LeaderRestab is the analogous instant for the HΩ output.
	LeaderRestab Time
	// Leader is the stabilized HΩ output.
	Leader LeaderInfo
	// EventuallyUp and Correct are |EventuallyUp| and |Correct|.
	EventuallyUp, Correct int
	// Recoveries counts executed recover events.
	Recoveries int
	// Stopped is why the run ended (horizon for a healthy detector run:
	// polling never quiesces).
	Stopped sim.StopReason
	// Stats aggregates message costs over the horizon.
	Stats Stats
}

// RunChurnOHP executes Figure 6 on every process under the churn schedule,
// verifies the churn-restated ◇HP̄ and HΩ class properties against the
// ground truth, cross-checks the engine's incremental fault bookkeeping
// against the schedule-derived truth, and reports re-stabilization times.
// Malformed inputs — an invalid assignment, or a horizon that cuts the
// churn schedule short — are rejected with errors, not run: a truncated
// schedule would yield meaningless re-stabilization times.
func RunChurnOHP(e ChurnOHPExperiment) (ChurnOHPResult, error) {
	if err := e.IDs.Validate(); err != nil {
		return ChurnOHPResult{}, fmt.Errorf("hds: %w", err)
	}
	if e.Horizon == 0 {
		e.Horizon = 5000
	}
	n := e.IDs.N()
	schedule := e.Churn.Events(n)
	if err := validateChurnHorizon(schedule, e.Horizon); err != nil {
		return ChurnOHPResult{}, err
	}
	net := e.Net
	if net == nil {
		net = sim.PartialSync{Delta: 3}
	}
	rec := traceRecorder(e.Trace)
	eng := sim.New(sim.Config{IDs: e.IDs, Net: net, Seed: e.Seed, Recorder: rec, MaxEvents: e.MaxEvents})
	dets := make([]*ohp.Detector, n)
	for i := range dets {
		dets[i] = ohp.New()
		eng.AddProcess(dets[i])
	}
	eng.ApplyChurn(schedule)
	truth := fd.NewGroundTruthFromChurn(e.IDs, schedule)

	// Streaming probes: the churn checkers (◇HP̄, HΩ) judge final outputs
	// and stabilization times only, so O(1) state per process suffices —
	// probe memory no longer grows with the run. Equivalence with the
	// materialized Probe pipeline is pinned in internal/fd.
	trustedProbe := fd.NewStreamProbe(eng, n, func(p sim.PID) (*multiset.Multiset[ident.ID], bool) {
		if eng.Crashed(p) {
			return nil, false
		}
		return dets[p].TrustedView(), true
	}, func(a, b *multiset.Multiset[ident.ID]) bool { return a.Equal(b) })
	leaderProbe := fd.NewStreamProbe(eng, n, func(p sim.PID) (fd.LeaderInfo, bool) {
		if eng.Crashed(p) {
			return fd.LeaderInfo{}, false
		}
		return dets[p].Leader()
	}, func(a, b fd.LeaderInfo) bool { return a == b })
	if rec.Retaining() {
		fd.RecordChanges(rec, trustedProbe, fd.TagTrusted, fd.RenderView)
		fd.RecordChanges(rec, leaderProbe, fd.TagLeader, fd.RenderLeader)
	}

	eng.Run(e.Horizon)
	if err := guardErr(eng); err != nil {
		return ChurnOHPResult{}, err
	}
	if err := checkTruthConsistency(eng, truth); err != nil {
		return ChurnOHPResult{}, err
	}

	resT, err := fd.CheckDiamondHPbar(truth, trustedProbe)
	if err != nil {
		return ChurnOHPResult{}, err
	}
	resL, err := fd.CheckHOmega(truth, leaderProbe)
	if err != nil {
		return ChurnOHPResult{}, err
	}
	out := ChurnOHPResult{
		LastChange:    truth.LastChange(),
		TrustedRestab: resT.StabilizationTime,
		LeaderRestab:  resL.StabilizationTime,
		EventuallyUp:  len(truth.EventuallyUp()),
		Correct:       len(truth.Correct()),
		Recoveries:    eng.Recoveries(),
		Stopped:       eng.Stopped(),
		Stats:         rec.Stats(),
	}
	if up := truth.EventuallyUp(); len(up) > 0 {
		out.Leader, _ = leaderProbe.Last(up[0])
	}
	return out, nil
}

// HeartbeatExperiment is the scalable churn workload: every process beats
// (one broadcast) every Period, churners cycle down and up, and the run is
// judged on engine-level ground truth and aggregate costs rather than on a
// full detector stack — which is what makes n in the hundreds to thousands
// affordable. It is the stress harness for the engine's crash-recovery
// path, not a paper artifact.
type HeartbeatExperiment struct {
	IDs   Assignment
	Churn ChurnSpec
	// Net defaults to Async{MaxDelay: 8}.
	Net    sim.Model
	Period Time // beat interval, default 10
	Seed   int64
	// Horizon caps virtual time (default 10 periods).
	Horizon Time
	// Beaters bounds how many processes beat (the first Beaters PIDs); the
	// rest only listen. 0 means all n beat. With a fixed beater count the
	// event volume is Θ(Beaters·n) instead of Θ(n²), so population scaling
	// sweeps can grow n while every broadcast still fans out to all n live
	// recipients — n remains the stressed dimension.
	Beaters int
	// MaxEvents overrides the engine's runaway guard (0 = engine default).
	MaxEvents int
	// Trace, when non-nil, replaces the default stats-only recorder (see
	// OHPExperiment.Trace).
	Trace *trace.Recorder
	// StreamVerify additionally attaches a streaming probe (O(1) state per
	// process) over the per-process delivery counters and, on complete
	// runs, verifies delivery liveness: every eventually-up process heard
	// at least one beat. This is the large-n stand-in for the detector
	// checkers, which a heartbeat-only workload cannot run.
	StreamVerify bool
}

// HeartbeatResult reports one heartbeat-churn run.
type HeartbeatResult struct {
	// Processed is the number of simulator events executed.
	Processed int
	// Stopped is why the run ended (quiescent, horizon, max-events).
	Stopped sim.StopReason
	// EventuallyUp and Correct are |EventuallyUp| and |Correct|.
	EventuallyUp, Correct int
	// Recoveries counts executed recover events.
	Recoveries int
	// MaxQueue is the engine's event-queue high-water mark — with lazy
	// fan-out it tracks live broadcasts and timers, not n² message copies,
	// which is what makes large-n sweeps constant-memory.
	MaxQueue int
	// Stats aggregates message costs.
	Stats Stats
}

// beat is the heartbeat payload.
type beat struct{}

// MsgTag implements sim.Tagger.
func (beat) MsgTag() string { return "BEAT" }

// heartbeater broadcasts one beat per period and restarts its chain after
// recovery (timer epochs keep exactly one chain live). A listen-only
// heartbeater (beats=false) never broadcasts or arms timers; it just
// counts deliveries, which keeps pure listeners off the event queue.
type heartbeater struct {
	env    sim.Environment
	period Time
	epoch  int
	heard  int
	beats  bool
}

func (h *heartbeater) Init(env sim.Environment) {
	h.env = env
	if !h.beats {
		return
	}
	env.Broadcast(beat{})
	env.SetTimer(h.period, h.epoch)
}

func (h *heartbeater) OnMessage(any) { h.heard++ }

func (h *heartbeater) OnTimer(tag int) {
	if tag != h.epoch {
		return // stale pre-outage timer
	}
	h.env.Broadcast(beat{})
	h.env.SetTimer(h.period, h.epoch)
}

func (h *heartbeater) OnRecover() {
	if !h.beats {
		return
	}
	h.epoch++
	h.env.Broadcast(beat{})
	h.env.SetTimer(h.period, h.epoch)
}

var (
	_ sim.Process   = (*heartbeater)(nil)
	_ sim.Recoverer = (*heartbeater)(nil)
)

// RunHeartbeatChurn executes the heartbeat workload under churn and
// cross-checks the engine's incremental Correct/EventuallyUp bookkeeping
// against the schedule-derived ground truth. On every run — truncated or
// not — the per-process delivery counters must sum to exactly the
// recorder's Delivered count: one OnMessage per delivery trace, the
// end-to-end accounting check on the lazy fan-out path. Like RunChurnOHP
// it rejects invalid assignments and horizons that truncate the churn
// schedule.
func RunHeartbeatChurn(e HeartbeatExperiment) (HeartbeatResult, error) {
	if err := e.IDs.Validate(); err != nil {
		return HeartbeatResult{}, fmt.Errorf("hds: %w", err)
	}
	if e.Period <= 0 {
		e.Period = 10
	}
	if e.Horizon == 0 {
		e.Horizon = 10 * e.Period
	}
	n := e.IDs.N()
	beaters := e.Beaters
	if beaters <= 0 || beaters > n {
		beaters = n
	}
	schedule := e.Churn.Events(n)
	if err := validateChurnHorizon(schedule, e.Horizon); err != nil {
		return HeartbeatResult{}, err
	}
	net := e.Net
	if net == nil {
		net = sim.Async{MaxDelay: 8}
	}
	rec := traceRecorder(e.Trace) // default is stats-only: keeps big n cheap
	eng := sim.New(sim.Config{IDs: e.IDs, Net: net, Seed: e.Seed, Recorder: rec, MaxEvents: e.MaxEvents})
	beats := make([]*heartbeater, n)
	for i := 0; i < n; i++ {
		beats[i] = &heartbeater{period: e.Period, beats: i < beaters}
		eng.AddProcess(beats[i])
	}
	eng.ApplyChurn(schedule)
	truth := fd.NewGroundTruthFromChurn(e.IDs, schedule)

	var heardProbe *fd.StreamProbe[int]
	if e.StreamVerify {
		heardProbe = fd.NewStreamProbe(eng, n, func(p sim.PID) (int, bool) {
			if eng.Crashed(p) {
				return 0, false
			}
			return beats[p].heard, true
		}, func(a, b int) bool { return a == b })
	}

	eng.Run(e.Horizon)
	complete := eng.Stopped() != sim.StopMaxEvents
	if complete {
		// A truncated run's engine state is still consistent, but the
		// schedule may not have fully fired; only cross-check complete runs.
		if err := checkTruthConsistency(eng, truth); err != nil {
			return HeartbeatResult{}, err
		}
	}
	stats := rec.Stats()
	heard := 0
	for _, h := range beats {
		heard += h.heard
	}
	if heard != stats.Delivered {
		return HeartbeatResult{}, fmt.Errorf(
			"hds: processes heard %d beats but the recorder delivered %d — fan-out accounting drift", heard, stats.Delivered)
	}
	if heardProbe != nil && complete {
		for _, p := range truth.EventuallyUp() {
			if got, ok := heardProbe.Last(p); !ok || got == 0 {
				return HeartbeatResult{}, fmt.Errorf("hds: eventually-up process %d heard no beats", p)
			}
		}
	}
	return HeartbeatResult{
		Processed:    eng.Processed(),
		Stopped:      eng.Stopped(),
		EventuallyUp: len(truth.EventuallyUp()),
		Correct:      len(truth.Correct()),
		Recoveries:   eng.Recoveries(),
		MaxQueue:     eng.MaxQueueLen(),
		Stats:        rec.Stats(),
	}, nil
}

// checkTruthConsistency asserts that the engine's incremental fault
// bookkeeping (pending-crash counters, crash/recover schedule keys) agrees
// with the ground truth derived independently from the schedule. Any
// divergence means the engine's CorrectSet/EventuallyUpSet — the sets every
// checker verdict is relative to — has drifted from what actually happened.
func checkTruthConsistency(eng *sim.Engine, truth *fd.GroundTruth) error {
	if got, want := eng.CorrectSet(), truth.Correct(); !samePIDs(got, want) {
		return fmt.Errorf("hds: engine CorrectSet %v disagrees with ground truth %v", got, want)
	}
	if got, want := eng.EventuallyUpSet(), truth.EventuallyUp(); !samePIDs(got, want) {
		return fmt.Errorf("hds: engine EventuallyUpSet %v disagrees with ground truth %v", got, want)
	}
	return nil
}

func samePIDs(a, b []sim.PID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
