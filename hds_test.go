package hds

import (
	"testing"

	"repro/internal/fd/oracle"
)

func TestRunFig8Oracle(t *testing.T) {
	rep, stats, err := RunFig8(Fig8Experiment{
		IDs:       BalancedIDs(5, 2),
		T:         2,
		Crashes:   map[PID]Time{1: 30},
		Stabilize: 80,
		Adversary: oracle.AdversaryRotate,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deciders < 4 {
		t.Errorf("deciders = %d, want ≥ 4", rep.Deciders)
	}
	if stats.Broadcasts == 0 || stats.Delivered == 0 {
		t.Errorf("stats empty: %+v", stats)
	}
}

func TestRunFig8EndToEnd(t *testing.T) {
	rep, _, err := RunFig8(Fig8Experiment{
		IDs:       BalancedIDs(5, 2),
		T:         2,
		Crashes:   map[PID]Time{3: 40},
		Net:       PartialSync{GST: 60, Delta: 3},
		Detectors: MessagePassingDetectors,
		Seed:      2,
		Horizon:   2_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Value == "" {
		t.Error("no decision value")
	}
}

func TestRunFig9MinorityCorrect(t *testing.T) {
	rep, _, err := RunFig9(Fig9Experiment{
		IDs:       BalancedIDs(6, 3),
		Crashes:   map[PID]Time{0: 20, 1: 35, 2: 50, 3: 65},
		Stabilize: 120,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deciders < 2 {
		t.Errorf("deciders = %d, want ≥ 2", rep.Deciders)
	}
}

func TestRunFig9AnonymousBaseline(t *testing.T) {
	if _, _, err := RunFig9(Fig9Experiment{
		IDs:               AnonymousIDs(5),
		AnonymousBaseline: true,
		Crashes:           map[PID]Time{4: 45},
		Stabilize:         100,
		Adversary:         oracle.AdversaryRotate,
		Seed:              4,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOHP(t *testing.T) {
	res, err := RunOHP(OHPExperiment{
		IDs:     BalancedIDs(5, 2),
		Crashes: map[PID]Time{2: 50},
		GST:     60,
		Delta:   3,
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TrustedStabilization < 50 {
		t.Errorf("stabilized at %d before the crash", res.TrustedStabilization)
	}
	if res.Leader.ID == "" {
		t.Error("no leader elected")
	}
	if len(res.FinalTimeouts) != 5 {
		t.Errorf("timeouts = %v", res.FinalTimeouts)
	}
}

func TestRunHSigma(t *testing.T) {
	res, err := RunHSigma(HSigmaExperiment{
		IDs:        BalancedIDs(6, 3),
		CrashSteps: map[PID]CrashStep{1: {Step: 3, DeliverProb: 0.5}},
		Steps:      10,
		Seed:       6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.QuoraPerProcess) != 5 {
		t.Errorf("quora sizes = %v, want 5 survivors", res.QuoraPerProcess)
	}
}

func TestIdentityConstructors(t *testing.T) {
	if got := UniqueIDs(4).DistinctCount(); got != 4 {
		t.Errorf("UniqueIDs distinct = %d", got)
	}
	if got := AnonymousIDs(4).DistinctCount(); got != 1 {
		t.Errorf("AnonymousIDs distinct = %d", got)
	}
	if got := BalancedIDs(6, 3).DistinctCount(); got != 3 {
		t.Errorf("BalancedIDs distinct = %d", got)
	}
	if got := SkewedIDs(5, 3).Mult("giant"); got != 3 {
		t.Errorf("SkewedIDs giant mult = %d", got)
	}
	if got := DomainIDs(map[string]int{"x.org": 2}).N(); got != 2 {
		t.Errorf("DomainIDs N = %d", got)
	}
}

func TestRunnersRejectMalformedExperiments(t *testing.T) {
	tests := []struct {
		name string
		run  func() error
	}{
		{"fig8 t too large", func() error {
			_, _, err := RunFig8(Fig8Experiment{IDs: UniqueIDs(4), T: 2})
			return err
		}},
		{"fig8 crash pid out of range", func() error {
			_, _, err := RunFig8(Fig8Experiment{IDs: UniqueIDs(3), T: 1, Crashes: map[PID]Time{9: 5}})
			return err
		}},
		{"fig8 negative crash time", func() error {
			_, _, err := RunFig8(Fig8Experiment{IDs: UniqueIDs(3), T: 1, Crashes: map[PID]Time{0: -1}})
			return err
		}},
		{"fig8 proposal count mismatch", func() error {
			_, _, err := RunFig8(Fig8Experiment{IDs: UniqueIDs(3), T: 1, Proposals: []Value{"a"}})
			return err
		}},
		{"fig9 empty assignment", func() error {
			_, _, err := RunFig9(Fig9Experiment{})
			return err
		}},
		{"fig9 bottom proposed", func() error {
			_, _, err := RunFig9(Fig9Experiment{IDs: UniqueIDs(2), Proposals: []Value{"a", "\x00⊥"}})
			return err
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.run(); err == nil {
				t.Error("malformed experiment accepted")
			}
		})
	}
}
