// Domains: privacy-preserving consensus where users identify only by
// their domain.
//
// The paper cites the setting of "Byzantine agreement with homonyms"
// (Delporte-Gallet et al.): users keep their privacy by using their
// *domain* as their identifier, so every user of one domain is homonymous
// with the others. Here three organizations of different sizes run the
// Figure 8 consensus to agree on a common configuration value, with one
// organization suffering a partial outage. The leader is not a process
// but a *domain*: HΩ elects an identifier together with the number of
// correct processes carrying it, and the Leaders' Coordination Phase makes
// that whole domain speak with one voice.
//
//	go run ./examples/domains
package main

import (
	"fmt"
	"log"

	hds "repro"
)

func main() {
	ids := hds.DomainIDs(map[string]int{
		"alpha.example": 3, // indexes 0..2
		"beta.example":  2, // indexes 3..4
		"gamma.example": 2, // indexes 5..6
	})
	n := ids.N()
	fmt.Printf("%d users across %d domains: %v\n", n, ids.DistinctCount(), ids)

	proposals := make([]hds.Value, n)
	for i := range proposals {
		proposals[i] = hds.Value(fmt.Sprintf("config-rev-%d", 40+i))
	}
	// Two alpha.example users go down: the domain keeps operating with
	// its remaining member, and HΩ's multiplicity shrinks accordingly.
	crashes := map[hds.PID]hds.Time{0: 25, 1: 55}

	report, stats, err := hds.RunFig8(hds.Fig8Experiment{
		IDs:       ids,
		T:         3, // n=7, t<n/2
		Crashes:   crashes,
		Proposals: proposals,
		Stabilize: 90,
		Seed:      3,
	})
	if err != nil {
		log.Fatalf("consensus failed verification: %v", err)
	}
	fmt.Println("consensus reached ✔ despite the alpha.example outage")
	fmt.Printf("  agreed config:     %s\n", report.Value)
	fmt.Printf("  deciders:          %d of %d users\n", report.Deciders, n)
	fmt.Printf("  rounds needed:     %d\n", report.MaxRound)
	fmt.Printf("  COORD traffic:     %d broadcasts (the homonymous leaders' coordination)\n",
		stats.ByTag["COORD"])
}
