// Quickstart: solve consensus among homonymous processes.
//
// Five processes share two identifiers (three "g001"s, two "g002"s); one
// crashes mid-run. The Figure 8 algorithm (HAS[t < n/2, HΩ]) decides with
// a failure detector of class HΩ — here the paper's own Figure 6 detector
// running underneath, over a partially synchronous network.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	hds "repro"
)

func main() {
	report, stats, err := hds.RunFig8(hds.Fig8Experiment{
		IDs:       hds.BalancedIDs(5, 2),       // 5 processes, 2 identifiers
		T:         2,                           // tolerate up to 2 crashes
		Crashes:   map[hds.PID]hds.Time{3: 40}, // process 3 crashes at t=40
		Net:       hds.PartialSync{GST: 60, Delta: 3},
		Detectors: hds.MessagePassingDetectors, // Fig. 6 (◇HP̄→HΩ) underneath
		Seed:      1,
	})
	if err != nil {
		log.Fatalf("consensus failed verification: %v", err)
	}
	fmt.Println("consensus reached ✔")
	fmt.Printf("  decided value:     %q\n", report.Value)
	fmt.Printf("  deciders:          %d (all correct processes)\n", report.Deciders)
	fmt.Printf("  rounds needed:     %d\n", report.MaxRound)
	fmt.Printf("  last decision at:  t=%d (virtual time)\n", report.LastDecision)
	fmt.Printf("  broadcasts:        %d  (by type: %v)\n", stats.Broadcasts, stats.ByTag)
}
