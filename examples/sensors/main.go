// Sensors: consensus in a sensor network with colliding random identifiers
// and massive failures.
//
// The paper's introduction motivates homonymy with sensor networks: motes
// cannot be guaranteed unique identifiers — they draw random ones, and
// collisions happen. This example deploys 12 motes whose 8-bit-ish random
// identifiers collide, then crashes seven of them (a majority!). The
// Figure 9 algorithm (HAS[HΩ, HΣ]) still reaches agreement on a reading,
// because it tolerates any number of crashes — Fig. 8 would be helpless
// here.
//
//	go run ./examples/sensors
package main

import (
	"fmt"
	"log"
	"math/rand"

	hds "repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	n := 12
	ids := hds.RandomIDs(n, 16, rng) // 12 motes, identifier space of 16
	fmt.Printf("mote identifiers (%d distinct among %d motes):\n  %v\n",
		ids.DistinctCount(), n, ids)

	// Each mote proposes its temperature reading; 7 of 12 die.
	proposals := make([]hds.Value, n)
	for i := range proposals {
		proposals[i] = hds.Value(fmt.Sprintf("%2.1f°C", 19.0+rng.Float64()*4))
	}
	crashes := map[hds.PID]hds.Time{0: 15, 2: 30, 4: 45, 6: 60, 8: 75, 9: 90, 11: 105}

	report, stats, err := hds.RunFig9(hds.Fig9Experiment{
		IDs:       ids,
		Crashes:   crashes,
		Proposals: proposals,
		Stabilize: 150, // detectors settle after the die-off
		Seed:      7,
	})
	if err != nil {
		log.Fatalf("consensus failed verification: %v", err)
	}
	fmt.Printf("\n%d of %d motes crashed — far beyond a majority.\n", len(crashes), n)
	fmt.Println("consensus reached ✔ (Figure 9: any number of crashes)")
	fmt.Printf("  agreed reading:    %s\n", report.Value)
	fmt.Printf("  deciders:          %d of %d (motes that decided before dying count too)\n", report.Deciders, n)
	fmt.Printf("  rounds needed:     %d\n", report.MaxRound)
	fmt.Printf("  broadcasts:        %d\n", stats.Broadcasts)
}
