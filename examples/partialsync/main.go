// Partialsync: the paper's end-to-end partial-synchrony result, live.
//
// This example runs on the goroutine runtime (real concurrency, real
// clocks, real timeouts), not the simulator: every process is a goroutine,
// the network delivers each broadcast copy after a random real delay, and
// before GST (here 80ms) deliveries are arbitrarily slow. Each process
// stacks the live Figure 6 detector (◇HP̄ → HΩ, adaptive timeouts) under
// the blocking Figure 8 consensus — the combination the paper highlights:
// consensus in a homonymous partially synchronous system with a majority
// of correct processes and no initial membership knowledge.
//
//	go run ./examples/partialsync
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hruntime"
	"repro/internal/ident"
)

func main() {
	ids := ident.Assignment{"ant", "ant", "bee", "bee", "cat"}
	n := ids.N()
	const tFaults = 2

	cluster := hruntime.NewCluster(ids, hruntime.Options{
		Seed:     42,
		MinDelay: 200 * time.Microsecond,
		MaxDelay: 2 * time.Millisecond,
		GST:      80 * time.Millisecond, // links timely only after this
	})
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	fmt.Printf("%d goroutine-processes, ids %v, GST in 80ms…\n", n, ids)

	type result struct {
		p   int
		v   core.Value
		err error
	}
	results := make(chan result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dm := hruntime.NewDemux(cluster, i, "fd", "consensus")
			defer dm.Close()
			det := hruntime.StartOHP(dm, "fd", ids[i], time.Millisecond)
			defer det.Stop()
			v, err := hruntime.Propose(ctx, dm, det, ids[i],
				hruntime.Config{N: n, T: tFaults},
				core.Value(fmt.Sprintf("proposal-of-p%d", i)))
			results <- result{p: i, v: v, err: err}
		}(i)
	}

	// Crash one "ant" after 20ms — mid pre-GST chaos.
	time.Sleep(20 * time.Millisecond)
	cluster.Crash(1)
	fmt.Println("crashed process 1 (an 'ant') during the unstable period")

	decided := make(map[int]core.Value)
	for len(decided) < n-1 {
		r := <-results
		if r.p == 1 {
			continue
		}
		if r.err != nil {
			log.Fatalf("process %d: %v", r.p, r.err)
		}
		decided[r.p] = r.v
	}
	cancel()
	wg.Wait()

	var common core.Value
	for p, v := range decided {
		if common == "" {
			common = v
		}
		if v != common {
			log.Fatalf("agreement violated: p%d decided %q, others %q", p, v, common)
		}
	}
	fmt.Println("consensus reached ✔ (live goroutines, partial synchrony)")
	fmt.Printf("  all %d survivors decided %q\n", len(decided), common)
}
