#!/usr/bin/env python3
"""Convert `go test -bench` output into a JSON benchmark record.

Usage: go test -bench=. ... | scripts/bench_json.py > BENCH_smoke.json

Parses the standard benchmark output format — name, iterations, then
value/unit pairs (ns/op, B/op, allocs/op, and any custom ReportMetric
units) — plus the goos/goarch/pkg/cpu header lines, and emits one JSON
object. CI uploads the result as an artifact so the performance
trajectory of the hot paths is recorded per commit.
"""

import json
import re
import sys

# Non-greedy name so the -N GOMAXPROCS suffix is stripped: the recorded
# benchmark identity must not vary with the runner's core count.
BENCH = re.compile(r"^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$")


def main():
    meta = {}
    results = []
    for line in sys.stdin:
        line = line.rstrip("\n")
        m = re.match(r"^(goos|goarch|pkg|cpu):\s*(.*)$", line)
        if m:
            # Per-package runs repeat the header; keep the first value and
            # collect every pkg.
            key, val = m.group(1), m.group(2)
            if key == "pkg":
                meta.setdefault("pkgs", []).append(val)
            else:
                meta.setdefault(key, val)
            continue
        m = BENCH.match(line)
        if not m:
            continue
        name, iters, rest = m.group(1), int(m.group(2)), m.group(3)
        metrics = {}
        parts = rest.split()
        for value, unit in zip(parts[0::2], parts[1::2]):
            try:
                metrics[unit] = float(value)
            except ValueError:
                pass
        results.append({"name": name, "iterations": iters, "metrics": metrics})
    json.dump({**meta, "benchmarks": results}, sys.stdout, indent=2)
    print()


if __name__ == "__main__":
    main()
