#!/usr/bin/env python3
"""Check relative markdown links and anchors in the repo's documentation.

Usage: scripts/check_links.py FILE.md [FILE.md ...]

For every inline link `[text](target)` with a non-URL target, verify that
the referenced file exists relative to the linking file, and — when the
target carries a `#fragment` — that the referenced file contains a heading
whose GitHub-style slug matches the fragment. Exits non-zero listing every
broken link.
"""

import os
import re
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def slugify(heading: str) -> str:
    """GitHub's anchor algorithm, close enough for ASCII+unicode headings:
    lowercase, drop everything but word characters/spaces/hyphens, then
    spaces to hyphens. Backtick/emphasis markers are stripped first."""
    h = heading.strip().lower()
    h = h.replace("`", "").replace("*", "").replace("_", " ").strip()
    h = re.sub(r"[^\w\- ]", "", h, flags=re.UNICODE)
    return h.replace(" ", "-")


def anchors_of(path: str) -> set:
    out = set()
    in_code = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if line.lstrip().startswith("```"):
                in_code = not in_code
                continue
            if in_code:
                continue
            m = HEADING.match(line)
            if m:
                out.add(slugify(m.group(1)))
    return out


def main(files):
    errors = []
    for src in files:
        base = os.path.dirname(os.path.abspath(src))
        in_code = False
        with open(src, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if line.lstrip().startswith("```"):
                    in_code = not in_code
                    continue
                if in_code:
                    continue
                for target in LINK.findall(line):
                    if re.match(r"^[a-z]+://|^mailto:", target):
                        continue  # external URL: not checked offline
                    path, _, frag = target.partition("#")
                    ref = os.path.normpath(os.path.join(base, path)) if path else os.path.abspath(src)
                    if not os.path.exists(ref):
                        errors.append(f"{src}:{lineno}: broken link {target!r}: no such file {ref}")
                        continue
                    if frag and ref.endswith(".md"):
                        if slugify(frag) not in anchors_of(ref):
                            errors.append(f"{src}:{lineno}: broken anchor {target!r}: no heading #{frag} in {ref}")
    for e in errors:
        print(e, file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    sys.exit(main(sys.argv[1:]))
