// Package hds (Homonymous Distributed Systems) is the public face of this
// repository: a library reproducing "Failure Detectors in Homonymous
// Distributed Systems (with an Application to Consensus)" (Arévalo,
// Fernández Anta, Imbs, Jiménez, Raynal; ICDCS 2012).
//
// The library provides, over a deterministic discrete-event simulator and
// a live goroutine runtime:
//
//   - the homonymous failure detector classes HΩ, HΣ and ◇HP̄, with the
//     paper's message-passing implementations (Figures 3, 6, 7), oracle
//     implementations for adversarial testing, and trace-based property
//     checkers for every class axiom;
//   - the reductions between classes (Figures 1, 2, 4; Theorems 1–4;
//     Observation 1) as executable, machine-checked transformations;
//   - the two consensus algorithms (Figures 8 and 9) plus the anonymous
//     baseline they derive from, with consensus-property checking.
//
// Quick start — solve consensus among homonymous processes under a
// partially synchronous network, with the failure detector stack built
// from the paper's own Figure 6 algorithm:
//
//	report, stats, err := hds.RunFig8(hds.Fig8Experiment{
//		IDs:       hds.BalancedIDs(5, 2),       // 5 processes, 2 identifiers
//		T:         2,                           // tolerate 2 crashes
//		Crashes:   map[hds.PID]hds.Time{3: 40}, // p3 crashes at t=40
//		Net:       hds.PartialSync{GST: 60, Delta: 3},
//		Detectors: hds.MessagePassingDetectors, // Fig. 6 underneath
//		Seed:      1,
//	})
//
// The sub-packages under internal/ hold the implementation; this package
// re-exports the stable surface and offers turnkey experiment runners.
package hds

import (
	"fmt"
	"math/rand"
	"slices"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/fd/ohp"
	"repro/internal/fd/oracle"
	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Identity types and constructors.
type (
	// ID is a process identifier; distinct processes may share one.
	ID = ident.ID
	// Assignment maps each process index to its identifier.
	Assignment = ident.Assignment
)

// Anonymous is the default identifier ⊥ of anonymous systems.
const Anonymous = ident.Anonymous

// UniqueIDs returns the classical assignment (ℓ = n).
func UniqueIDs(n int) Assignment { return ident.Unique(n) }

// AnonymousIDs returns the anonymous assignment (ℓ = 1).
func AnonymousIDs(n int) Assignment { return ident.AnonymousN(n) }

// BalancedIDs returns n processes spread evenly over l identifiers.
func BalancedIDs(n, l int) Assignment { return ident.Balanced(n, l) }

// SkewedIDs returns one identifier shared by heavy processes, the rest
// unique.
func SkewedIDs(n, heavy int) Assignment { return ident.Skewed(n, heavy) }

// DomainIDs groups processes into named domains sharing the domain name as
// identifier.
func DomainIDs(sizes map[string]int) Assignment { return ident.Domains(sizes) }

// RandomIDs draws each process's identifier uniformly from a space of the
// given size — collisions model sensor motes with random identities.
func RandomIDs(n, space int, r *rand.Rand) Assignment { return ident.Random(n, space, r) }

// Simulation types.
type (
	// PID is a process index (formalization/observability only).
	PID = sim.PID
	// Time is virtual time.
	Time = sim.Time
	// PartialSync is the HPS network model (eventually timely links).
	PartialSync = sim.PartialSync
	// Async is the HAS network model (reliable asynchronous links).
	Async = sim.Async
	// Pareto is the truncated heavy-tailed (Pareto) delay model.
	Pareto = sim.Pareto
	// LogNormal is the truncated log-normal delay model.
	LogNormal = sim.LogNormal
	// Alternating is time-varying partial synchrony (good/bad windows).
	Alternating = sim.Alternating
	// AsymmetricLinks adds a deterministic per-directed-link latency skew.
	AsymmetricLinks = sim.AsymmetricLinks
	// ChurnSpec generates deterministic crash-recovery churn schedules.
	ChurnSpec = sim.ChurnSpec
	// ChurnEvent is one crash/recover entry of a churn schedule.
	ChurnEvent = sim.ChurnEvent
	// Stats aggregates message costs of a run.
	Stats = trace.Stats
	// Report is the verified outcome of a consensus run.
	Report = check.Report
	// Value is a consensus proposal.
	Value = core.Value
	// LeaderInfo is the HΩ output pair (identifier, multiplicity).
	LeaderInfo = fd.LeaderInfo
)

// Failure detector query interfaces.
type (
	// HOmega is the class HΩ interface.
	HOmega = fd.HOmega
	// HSigma is the class HΣ interface.
	HSigma = fd.HSigma
	// DiamondHPbar is the class ◇HP̄ interface.
	DiamondHPbar = fd.DiamondHPbar
)

// DetectorSource selects how experiment runners build failure detectors.
type DetectorSource int

const (
	// OracleDetectors drive detectors from the simulator's global view
	// with a configurable stabilization time — consensus is tested against
	// the detector class, including adversarial pre-stabilization output.
	OracleDetectors DetectorSource = iota
	// MessagePassingDetectors stack the paper's own implementations
	// (Figure 6 for HΩ/◇HP̄) underneath the consensus algorithm.
	MessagePassingDetectors
)

// Fig8Experiment describes one run of the Figure 8 consensus
// (HAS[t < n/2, HΩ]).
type Fig8Experiment struct {
	IDs     Assignment
	T       int
	Crashes map[PID]Time
	// Net defaults to Async{}; use PartialSync with MessagePassingDetectors.
	Net sim.Model
	// Detectors defaults to OracleDetectors.
	Detectors DetectorSource
	// Stabilize is the oracle stabilization time (OracleDetectors only).
	Stabilize Time
	// Adversary shapes pre-stabilization oracle output (OracleDetectors).
	Adversary oracle.Adversary
	// Proposals defaults to "v0".."v{n-1}".
	Proposals []Value
	Seed      int64
	// Horizon caps virtual time (default 1e6).
	Horizon Time
	// Trace, when non-nil, replaces the default stats-only recorder: pass
	// a retaining recorder for a full in-memory trace, or one with a
	// trace.Sink attached to stream batches (spill mode). The caller owns
	// flushing.
	Trace *trace.Recorder
}

// RunFig8 executes the experiment, verifies Termination/Validity/Agreement
// and returns the verified report plus message statistics.
func RunFig8(e Fig8Experiment) (Report, Stats, error) {
	n := e.IDs.N()
	if err := validateExperiment(e.IDs, e.Crashes, e.Proposals); err != nil {
		return Report{}, Stats{}, err
	}
	if e.T < 0 || 2*e.T >= n {
		return Report{}, Stats{}, fmt.Errorf("hds: Fig8 requires 0 <= t < n/2, got t=%d n=%d", e.T, n)
	}
	proposals := e.Proposals
	if proposals == nil {
		proposals = defaultProposals(n)
	}
	if e.Horizon == 0 {
		e.Horizon = 1_000_000
	}
	rec := traceRecorder(e.Trace)
	eng := sim.New(sim.Config{IDs: e.IDs, Net: e.Net, Seed: e.Seed, KnownN: true, Recorder: rec})
	truth := fd.NewGroundTruth(e.IDs, e.Crashes)
	world := oracle.NewWorld(truth, e.Stabilize)

	insts := make([]*core.Fig8, n)
	for i := 0; i < n; i++ {
		node := sim.NewNode()
		var det fd.HOmega
		switch e.Detectors {
		case MessagePassingDetectors:
			d := ohp.New()
			node.Add("ohp", d)
			det = d
		default:
			d := oracle.NewHOmega(world, e.Adversary)
			node.Add("homega", d)
			det = d
		}
		insts[i] = core.NewFig8(det, e.T, proposals[i])
		node.Add("consensus", insts[i])
		eng.AddProcess(node)
	}
	eng.CrashSchedule(e.Crashes)
	eng.RunUntil(e.Horizon, func() bool { return allDecidedFig8(truth, insts) })
	if err := guardErr(eng); err != nil {
		return Report{}, rec.Stats(), err
	}

	outcomes := make([]core.Outcome, n)
	for i, inst := range insts {
		outcomes[i] = inst.Decided()
		if err := inst.InvariantErr(); err != nil {
			return Report{}, rec.Stats(), fmt.Errorf("hds: internal invariant: %w", err)
		}
	}
	rep, err := check.Consensus(truth, proposals, outcomes)
	return rep, rec.Stats(), err
}

// Fig9Experiment describes one run of the Figure 9 consensus
// (HAS[HΩ, HΣ]) or its anonymous baseline.
type Fig9Experiment struct {
	IDs     Assignment
	Crashes map[PID]Time
	Net     sim.Model
	// AnonymousBaseline switches to the AΩ variant without the Leaders'
	// Coordination Phase (§5.3 closing remark).
	AnonymousBaseline bool
	Stabilize         Time
	Adversary         oracle.Adversary
	Proposals         []Value
	Seed              int64
	Horizon           Time
	// Trace, when non-nil, replaces the default stats-only recorder (see
	// Fig8Experiment.Trace).
	Trace *trace.Recorder
}

// RunFig9 executes the experiment and verifies the consensus properties.
// Detectors are oracle-driven: the paper's HΣ implementation (Figure 7)
// lives in the synchronous model, so the asynchronous consensus is
// exercised against the class (see DESIGN.md's substitution table).
func RunFig9(e Fig9Experiment) (Report, Stats, error) {
	n := e.IDs.N()
	if err := validateExperiment(e.IDs, e.Crashes, e.Proposals); err != nil {
		return Report{}, Stats{}, err
	}
	proposals := e.Proposals
	if proposals == nil {
		proposals = defaultProposals(n)
	}
	if e.Horizon == 0 {
		e.Horizon = 1_000_000
	}
	rec := traceRecorder(e.Trace)
	eng := sim.New(sim.Config{IDs: e.IDs, Net: e.Net, Seed: e.Seed, Recorder: rec})
	truth := fd.NewGroundTruth(e.IDs, e.Crashes)
	world := oracle.NewWorld(truth, e.Stabilize)

	insts := make([]*core.Fig9, n)
	for i := 0; i < n; i++ {
		hs := oracle.NewHSigma(world)
		node := sim.NewNode().Add("hsigma", hs)
		if e.AnonymousBaseline {
			ao := oracle.NewAOmega(world, e.Adversary)
			node.Add("aomega", ao)
			insts[i] = core.NewFig9Anonymous(ao, hs, proposals[i])
		} else {
			ho := oracle.NewHOmega(world, e.Adversary)
			node.Add("homega", ho)
			insts[i] = core.NewFig9(ho, hs, proposals[i])
		}
		node.Add("consensus", insts[i])
		eng.AddProcess(node)
	}
	eng.CrashSchedule(e.Crashes)
	eng.RunUntil(e.Horizon, func() bool { return allDecidedFig9(truth, insts) })
	if err := guardErr(eng); err != nil {
		return Report{}, rec.Stats(), err
	}

	outcomes := make([]core.Outcome, n)
	for i, inst := range insts {
		outcomes[i] = inst.Decided()
		if err := inst.InvariantErr(); err != nil {
			return Report{}, rec.Stats(), fmt.Errorf("hds: internal invariant: %w", err)
		}
	}
	rep, err := check.Consensus(truth, proposals, outcomes)
	return rep, rec.Stats(), err
}

func allDecidedFig8(truth *fd.GroundTruth, insts []*core.Fig8) bool {
	for _, p := range truth.Correct() {
		if !insts[p].Decided().Decided {
			return false
		}
	}
	return true
}

func allDecidedFig9(truth *fd.GroundTruth, insts []*core.Fig9) bool {
	for _, p := range truth.Correct() {
		if !insts[p].Decided().Decided {
			return false
		}
	}
	return true
}

// guardErr converts a MaxEvents-truncated run into an error. Every
// experiment driver calls it right after the run: a truncated execution is
// not a quiescent one, and silently reading its results would turn the
// runaway guard into a source of wrong tables.
func guardErr(eng *sim.Engine) error {
	if eng.Stopped() == sim.StopMaxEvents {
		return fmt.Errorf("hds: run truncated by the MaxEvents guard after %d events — raise MaxEvents or shrink the scenario", eng.Processed())
	}
	return nil
}

// DefaultProposals is the proposal vector every runner uses when the
// experiment supplies none: "v0".."v{n-1}". Exported so offline
// verification can reconstruct the proposals a recorded run was checked
// against from its scenario fingerprint alone.
func DefaultProposals(n int) []Value { return defaultProposals(n) }

func defaultProposals(n int) []Value {
	out := make([]Value, n)
	for i := range out {
		out[i] = Value(fmt.Sprintf("v%d", i))
	}
	return out
}

// validateExperiment rejects malformed experiment descriptions with errors
// rather than panics: runner inputs are user-facing.
func validateExperiment(ids Assignment, crashes map[PID]Time, proposals []Value) error {
	if err := ids.Validate(); err != nil {
		return fmt.Errorf("hds: %w", err)
	}
	n := ids.N()
	// Validate in ascending PID order: with several malformed entries, the
	// one named in the error must not depend on map iteration order.
	pids := make([]PID, 0, len(crashes))
	for p := range crashes {
		pids = append(pids, p)
	}
	slices.Sort(pids)
	for _, p := range pids {
		if int(p) < 0 || int(p) >= n {
			return fmt.Errorf("hds: crash schedule names process %d outside [0,%d)", p, n)
		}
		if at := crashes[p]; at < 0 {
			return fmt.Errorf("hds: crash time %d for process %d is negative", at, p)
		}
	}
	if proposals != nil && len(proposals) != n {
		return fmt.Errorf("hds: %d proposals for %d processes", len(proposals), n)
	}
	for i, v := range proposals {
		if v == core.Bottom {
			return fmt.Errorf("hds: process %d proposes the reserved ⊥ value", i)
		}
	}
	return nil
}

// traceRecorder returns the recorder an experiment runs with: the caller-
// provided one (which may retain events in memory or stream them through a
// trace.Sink) or the stats-only default. Runners read Stats from it either
// way; callers that attach a sink flush it themselves after the run.
func traceRecorder(custom *trace.Recorder) *trace.Recorder {
	if custom != nil {
		return custom
	}
	return &trace.Recorder{}
}
